package wire

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"
)

func TestBackoffGrowthAndCap(t *testing.T) {
	r := Retry{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond,
		Multiplier: 2, Jitter: -1} // jitter disabled for determinism
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // capped
	}
	for i, w := range want {
		if got := r.Backoff(i + 1); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	r := Retry{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second,
		Multiplier: 2, Jitter: 0.5}
	for i := 0; i < 200; i++ {
		got := r.Backoff(1)
		if got < 50*time.Millisecond || got > 150*time.Millisecond {
			t.Fatalf("jittered backoff %v outside [50ms, 150ms]", got)
		}
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{&RemoteError{Msg: "queue full"}, false},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{ErrClosed, true},
		{io.ErrUnexpectedEOF, true},
		{errors.New("wire: dial 1.2.3.4: connection refused"), true},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Errorf("Retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestDoRetriesTransientThenSucceeds(t *testing.T) {
	r := Retry{MaxAttempts: 5, BaseDelay: time.Millisecond, Jitter: -1}
	calls := 0
	err := r.Do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return ErrClosed
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err = %v, calls = %d; want nil after 3 attempts", err, calls)
	}
}

func TestDoStopsOnRemoteError(t *testing.T) {
	r := Retry{MaxAttempts: 5, BaseDelay: time.Millisecond}
	calls := 0
	remote := &RemoteError{Msg: "no idle jobs"}
	err := r.Do(context.Background(), func() error {
		calls++
		return remote
	})
	if !errors.Is(err, remote) || calls != 1 {
		t.Fatalf("err = %v, calls = %d; want the remote error after 1 attempt", err, calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	r := Retry{MaxAttempts: 3, BaseDelay: time.Millisecond, Jitter: -1}
	calls := 0
	err := r.Do(context.Background(), func() error {
		calls++
		return ErrClosed
	})
	if !errors.Is(err, ErrClosed) || calls != 3 {
		t.Fatalf("err = %v, calls = %d; want ErrClosed after 3 attempts", err, calls)
	}
}

func TestDoStopsOnContextCancel(t *testing.T) {
	r := Retry{MaxAttempts: 100, BaseDelay: 50 * time.Millisecond, Jitter: -1}
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := r.Do(ctx, func() error {
		calls++
		return ErrClosed
	})
	if err == nil {
		t.Fatal("Do succeeded despite every attempt failing")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Do ran %v after cancellation", elapsed)
	}
	if calls >= 100 {
		t.Fatalf("Do made %d attempts despite cancellation", calls)
	}
}
