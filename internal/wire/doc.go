// Package wire is the transport layer shared by every Condor daemon: a
// length-prefixed, gob-encoded message frame over a net.Conn, plus a
// small request/response client and a per-connection server loop.
//
// The design is deliberately symmetric at the frame level — an Envelope
// is either a request, a reply, or a one-way notification — because the
// Remote Unix protocol needs both directions on one connection: the
// submitting machine's shadow dials the execution machine to place a job,
// and from then on the executor sends system-call requests *back* over
// the same connection.
package wire
