package wire

import (
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

type ping struct{ N int }
type pong struct{ N int }
type note struct{ Text string }

func registerTestTypes() {
	gob.Register(ping{})
	gob.Register(pong{})
	gob.Register(note{})
}

func TestMain(m *testing.M) {
	registerTestTypes()
	testingMain(m)
}

func testingMain(m interface{ Run() int }) {
	code := m.Run()
	if code != 0 {
		panic(fmt.Sprintf("tests failed with code %d", code))
	}
}

func echoServer(t *testing.T) *Server {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", func(p *Peer) Handler {
		return func(_ context.Context, msg any) (any, error) {
			switch m := msg.(type) {
			case ping:
				return pong{N: m.N + 1}, nil
			case note:
				return nil, nil
			default:
				return nil, fmt.Errorf("unexpected %T", msg)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestCallRoundTrip(t *testing.T) {
	srv := echoServer(t)
	peer, err := Dial(srv.Addr(), time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	reply, err := peer.Call(context.Background(), ping{N: 41})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := reply.(pong)
	if !ok || got.N != 42 {
		t.Fatalf("reply = %#v", reply)
	}
}

func TestConcurrentCalls(t *testing.T) {
	srv := echoServer(t)
	peer, err := Dial(srv.Addr(), time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 100)
	for i := 0; i < 100; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			reply, err := peer.Call(context.Background(), ping{N: i})
			if err != nil {
				errs <- err
				return
			}
			if p, ok := reply.(pong); !ok || p.N != i+1 {
				errs <- fmt.Errorf("call %d got %#v", i, reply)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestRemoteError(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", func(p *Peer) Handler {
		return func(_ context.Context, msg any) (any, error) {
			return nil, errors.New("queue is full")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	peer, err := Dial(srv.Addr(), time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	_, err = peer.Call(context.Background(), ping{})
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if !strings.Contains(remote.Msg, "queue is full") {
		t.Fatalf("remote msg = %q", remote.Msg)
	}
}

func TestCallAfterServerClose(t *testing.T) {
	srv := echoServer(t)
	peer, err := Dial(srv.Addr(), time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	if _, err := peer.Call(context.Background(), ping{N: 1}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	<-peer.Done()
	if _, err := peer.Call(context.Background(), ping{N: 2}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestPendingCallsFailOnDisconnect(t *testing.T) {
	// A server that never replies.
	block := make(chan struct{})
	srv, err := NewServer("127.0.0.1:0", func(p *Peer) Handler {
		return func(_ context.Context, msg any) (any, error) {
			<-block
			return nil, nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(block); srv.Close() }()
	peer, err := Dial(srv.Addr(), time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	result := make(chan error, 1)
	go func() {
		_, err := peer.Call(context.Background(), ping{})
		result <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the call get pending
	peer.Close()
	select {
	case err := <-result:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending call never failed after close")
	}
}

func TestCallContextCancellation(t *testing.T) {
	block := make(chan struct{})
	srv, err := NewServer("127.0.0.1:0", func(p *Peer) Handler {
		return func(_ context.Context, msg any) (any, error) {
			<-block
			return pong{}, nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(block); srv.Close() }()
	peer, err := Dial(srv.Addr(), time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := peer.Call(ctx, ping{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestServerCallsBackToClient(t *testing.T) {
	// The RU pattern: client (shadow) dials in, then serves requests the
	// server (executor) sends back over the same connection.
	type sideband struct{ asked chan int }
	sb := sideband{asked: make(chan int, 1)}
	srv, err := NewServer("127.0.0.1:0", func(p *Peer) Handler {
		return func(_ context.Context, msg any) (any, error) {
			if q, ok := msg.(ping); ok {
				// Call back to the client before replying.
				reply, err := p.Call(context.Background(), ping{N: 100})
				if err != nil {
					return nil, err
				}
				sb.asked <- reply.(pong).N
				return pong{N: q.N}, nil
			}
			return nil, fmt.Errorf("unexpected %T", msg)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	clientHandler := func(_ context.Context, msg any) (any, error) {
		if q, ok := msg.(ping); ok {
			return pong{N: q.N * 2}, nil
		}
		return nil, errors.New("unexpected")
	}
	peer, err := Dial(srv.Addr(), time.Second, clientHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	reply, err := peer.Call(context.Background(), ping{N: 7})
	if err != nil {
		t.Fatal(err)
	}
	if reply.(pong).N != 7 {
		t.Fatalf("reply = %#v", reply)
	}
	select {
	case n := <-sb.asked:
		if n != 200 {
			t.Fatalf("callback result = %d, want 200", n)
		}
	case <-time.After(time.Second):
		t.Fatal("server callback never completed")
	}
}

func TestNotifyOneWay(t *testing.T) {
	got := make(chan string, 1)
	srv, err := NewServer("127.0.0.1:0", func(p *Peer) Handler {
		return func(_ context.Context, msg any) (any, error) {
			if n, ok := msg.(note); ok {
				got <- n.Text
			}
			return nil, nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	peer, err := Dial(srv.Addr(), time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	if err := peer.Notify(note{Text: "job suspended"}); err != nil {
		t.Fatal(err)
	}
	select {
	case text := <-got:
		if text != "job suspended" {
			t.Fatalf("notify text = %q", text)
		}
	case <-time.After(time.Second):
		t.Fatal("notification never arrived")
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	conn := NewConn(b)
	go func() {
		// Announce an absurd frame length.
		var lenBuf [4]byte
		binary.BigEndian.PutUint32(lenBuf[:], MaxFrameBytes+1)
		a.Write(lenBuf[:])
	}()
	if _, err := conn.Recv(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", 100*time.Millisecond, nil); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv := echoServer(t)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestPeerWithNilHandlerRejectsRequests(t *testing.T) {
	srv := echoServer(t)
	peer, err := Dial(srv.Addr(), time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	// The server side will try to call back; our nil handler must answer
	// with an error rather than hang. Simulate by sending a request from
	// a raw connection to the client is hard; instead test the unit:
	p := newStoppedPeer(NewConn(nopConn{}), nil)
	reply := make(chan Envelope, 1)
	go func() {
		p.serve(Envelope{ID: 1, Kind: KindRequest, Msg: ping{}})
		reply <- Envelope{}
	}()
	select {
	case <-reply:
	case <-time.After(time.Second):
		t.Fatal("serve with nil handler hung")
	}
}

// nopConn is a net.Conn that swallows writes.
type nopConn struct{}

func (nopConn) Read(b []byte) (int, error)         { select {} }
func (nopConn) Write(b []byte) (int, error)        { return len(b), nil }
func (nopConn) Close() error                       { return nil }
func (nopConn) LocalAddr() net.Addr                { return &net.TCPAddr{} }
func (nopConn) RemoteAddr() net.Addr               { return &net.TCPAddr{} }
func (nopConn) SetDeadline(t time.Time) error      { return nil }
func (nopConn) SetReadDeadline(t time.Time) error  { return nil }
func (nopConn) SetWriteDeadline(t time.Time) error { return nil }
