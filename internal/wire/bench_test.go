package wire

import (
	"context"
	"testing"
	"time"
)

// BenchmarkFrameRoundTrip measures one complete RPC over a real TCP
// loopback connection: gob encode, frame write, server decode, handler
// dispatch, reply frame, and client decode.
func BenchmarkFrameRoundTrip(b *testing.B) {
	srv, err := NewServer("127.0.0.1:0", func(p *Peer) Handler {
		return func(_ context.Context, msg any) (any, error) { return msg, nil }
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	peer, err := Dial(srv.Addr(), 5*time.Second, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer peer.Close()

	ctx := context.Background()
	msg := pingMsg{} // registered concrete type, minimal payload
	if _, err := peer.Call(ctx, msg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := peer.Call(ctx, msg); err != nil {
			b.Fatal(err)
		}
	}
}
