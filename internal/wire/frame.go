package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// MaxFrameBytes bounds a single message; larger frames indicate protocol
// corruption (or a checkpoint that should have been chunked).
const MaxFrameBytes = 64 << 20

// Frame-level errors.
var (
	// ErrFrameTooLarge is returned when a peer announces an oversized frame.
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	// ErrClosed is returned for operations on a closed connection.
	ErrClosed = errors.New("wire: connection closed")
)

// Kind distinguishes envelope roles on a connection.
type Kind uint8

// Envelope kinds.
const (
	KindRequest Kind = iota + 1
	KindReply
	KindOneWay
	// KindPing and KindPong are internal heartbeat frames, consumed by
	// the Peer and never delivered to application handlers.
	KindPing
	KindPong
)

// Envelope is one framed message. Msg carries a gob-registered concrete
// type (see internal/proto).
type Envelope struct {
	ID   uint64
	Kind Kind
	// Err is set on replies when the handler failed; Msg may be nil then.
	Err string
	Msg any
	// Trace optionally carries a W3C traceparent string propagating the
	// caller's span context (see internal/trace). Gob keeps this
	// backward compatible in both directions: old peers silently skip
	// the unknown field on receive, and envelopes from old peers decode
	// here with Trace == "".
	Trace string
}

// Conn wraps a net.Conn with framed gob envelopes. Reads and writes are
// independently serialized, so one reader goroutine and many writers can
// share a Conn.
type Conn struct {
	raw net.Conn

	readMu  sync.Mutex
	writeMu sync.Mutex

	// writeTimeoutNs / frameTimeoutNs hold the per-frame I/O bounds
	// (nanoseconds; 0 = unbounded). Atomics so SetFrameTimeouts never
	// contends with a reader blocked in Recv holding readMu.
	writeTimeoutNs atomic.Int64
	frameTimeoutNs atomic.Int64

	closeOnce sync.Once
	closeErr  error
}

// NewConn wraps raw.
func NewConn(raw net.Conn) *Conn {
	return &Conn{raw: raw}
}

// SetFrameTimeouts bounds each frame's I/O so a wedged peer fails fast
// instead of blocking the connection's write or read side forever:
// a Send must complete within write, and once a frame's first byte has
// arrived the remainder must arrive within read. An idle connection is
// never timed out — Recv waits for a frame's first byte without a
// deadline (heartbeats, not frame deadlines, bound idleness). Zero
// disables the respective bound. After a deadline expires mid-frame the
// stream is desynchronized, so the connection is closed.
func (c *Conn) SetFrameTimeouts(write, read time.Duration) {
	if write < 0 {
		write = 0
	}
	if read < 0 {
		read = 0
	}
	c.writeTimeoutNs.Store(int64(write))
	c.frameTimeoutNs.Store(int64(read))
}

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() string { return c.raw.RemoteAddr().String() }

// Close closes the underlying connection. Safe to call multiple times.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { c.closeErr = c.raw.Close() })
	return c.closeErr
}

// Send writes one envelope.
func (c *Conn) Send(env Envelope) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&env); err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	if payload.Len() > MaxFrameBytes {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, payload.Len())
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if d := time.Duration(c.writeTimeoutNs.Load()); d > 0 {
		_ = c.raw.SetWriteDeadline(time.Now().Add(d))
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(payload.Len()))
	if _, err := c.raw.Write(lenBuf[:]); err != nil {
		// A failed (possibly partial) frame write desynchronizes the
		// stream; the connection cannot be used again.
		c.Close()
		return fmt.Errorf("wire: write length: %w", err)
	}
	if _, err := c.raw.Write(payload.Bytes()); err != nil {
		c.Close()
		return fmt.Errorf("wire: write payload: %w", err)
	}
	mFramesSent.Inc()
	mBytesSent.Add(uint64(4 + payload.Len()))
	if env.Kind == KindPing || env.Kind == KindPong {
		mHeartbeatsSent.Inc()
	}
	if env.Trace != "" {
		mTraceBytesSent.Add(uint64(len(env.Trace)))
	}
	return nil
}

// maxEagerFrameAlloc caps how much Recv allocates up front on the
// strength of a peer's announced frame length alone. Larger frames grow
// the buffer as bytes actually arrive, so a hostile length prefix (64 MB
// announced, nothing sent) costs at most this much memory, not
// MaxFrameBytes.
const maxEagerFrameAlloc = 1 << 20

// readPayload reads an n-byte frame payload, trusting n only as far as
// maxEagerFrameAlloc; beyond that the buffer grows with the data.
func readPayload(r io.Reader, n uint32) ([]byte, error) {
	if n <= maxEagerFrameAlloc {
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, err
		}
		return payload, nil
	}
	var buf bytes.Buffer
	buf.Grow(maxEagerFrameAlloc)
	if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Recv reads one envelope, blocking until a frame arrives or the
// connection fails. With a frame timeout set (SetFrameTimeouts), waiting
// for a frame to *start* is unbounded, but once its first byte arrives
// the rest must follow within the timeout — a peer that stalls mid-frame
// fails fast instead of wedging the reader.
func (c *Conn) Recv() (Envelope, error) {
	c.readMu.Lock()
	defer c.readMu.Unlock()
	var env Envelope
	var lenBuf [4]byte
	frameTimeout := time.Duration(c.frameTimeoutNs.Load())
	if frameTimeout > 0 {
		// Clear any deadline armed for the previous frame: idleness
		// between frames is normal.
		_ = c.raw.SetReadDeadline(time.Time{})
	}
	if _, err := io.ReadFull(c.raw, lenBuf[:1]); err != nil {
		return env, fmt.Errorf("wire: read length: %w", err)
	}
	if frameTimeout > 0 {
		_ = c.raw.SetReadDeadline(time.Now().Add(frameTimeout))
	}
	if _, err := io.ReadFull(c.raw, lenBuf[1:]); err != nil {
		c.Close() // mid-frame failure: stream desynchronized
		return env, fmt.Errorf("wire: read length: %w", err)
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > MaxFrameBytes {
		c.Close() // cannot resynchronize without consuming the frame
		return env, fmt.Errorf("%w: %d bytes announced", ErrFrameTooLarge, n)
	}
	payload, err := readPayload(c.raw, n)
	if err != nil {
		c.Close()
		return env, fmt.Errorf("wire: read payload: %w", err)
	}
	mFramesRecv.Inc()
	mBytesRecv.Add(uint64(4 + n))
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&env); err != nil {
		return env, fmt.Errorf("wire: decode: %w", err)
	}
	if env.Kind == KindPing || env.Kind == KindPong {
		mHeartbeatsRecv.Inc()
	}
	if env.Trace != "" {
		mTraceBytesRecv.Add(uint64(len(env.Trace)))
	}
	return env, nil
}
