package wire

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func newTestPool(t *testing.T, cfg PoolConfig) *ClientPool {
	t.Helper()
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = time.Second
	}
	p := NewClientPool(cfg)
	t.Cleanup(p.Close)
	return p
}

func TestPoolReusesConnection(t *testing.T) {
	srv := echoServer(t)
	p := newTestPool(t, PoolConfig{})
	for i := 0; i < 3; i++ {
		reply, err := p.Call(context.Background(), srv.Addr(), ping{N: i})
		if err != nil {
			t.Fatal(err)
		}
		if got := reply.(pong).N; got != i+1 {
			t.Fatalf("call %d reply = %d", i, got)
		}
	}
	stats := p.Stats()
	if stats.Dials != 1 || stats.Reuses != 2 {
		t.Fatalf("stats = %+v, want 1 dial and 2 reuses", stats)
	}
	if p.Size() != 1 {
		t.Fatalf("pool size = %d, want 1", p.Size())
	}
}

func TestPoolReconnectsAfterServerRestart(t *testing.T) {
	srv := echoServer(t)
	addr := srv.Addr()
	p := newTestPool(t, PoolConfig{})
	if _, err := p.Call(context.Background(), addr, ping{N: 1}); err != nil {
		t.Fatal(err)
	}
	srv.Close() // cached peer dies

	// Rebind the same port (may need a few tries while the old listener
	// drains).
	var srv2 *Server
	deadline := time.Now().Add(5 * time.Second)
	for {
		var err error
		srv2, err = NewServer(addr, func(pe *Peer) Handler {
			return func(_ context.Context, msg any) (any, error) { return pong{N: msg.(ping).N + 1}, nil }
		})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("could not rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer srv2.Close()

	// The pool may need a beat to observe the peer's death.
	deadline = time.Now().Add(5 * time.Second)
	for {
		if _, err := p.Call(context.Background(), addr, ping{N: 2}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pool never reconnected after server restart")
		}
		time.Sleep(10 * time.Millisecond)
	}
	stats := p.Stats()
	if stats.Reconnects == 0 {
		t.Fatalf("stats = %+v, want a reconnect", stats)
	}
}

func TestPoolEvictsIdleConnections(t *testing.T) {
	srv := echoServer(t)
	p := newTestPool(t, PoolConfig{IdleTimeout: 30 * time.Millisecond})
	if _, err := p.Call(context.Background(), srv.Addr(), ping{N: 1}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Size() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle connection never evicted (size %d)", p.Size())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := p.Stats().Evictions; got == 0 {
		t.Fatalf("evictions = %d, want > 0", got)
	}
	// The pool must still serve the address after eviction.
	if _, err := p.Call(context.Background(), srv.Addr(), ping{N: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestPoolCallRetryRidesOutTransientDialFailure(t *testing.T) {
	// Reserve a port, then close the listener so the first attempts are
	// refused; bring a real server up on the same address mid-retry.
	tmp := echoServer(t)
	addr := tmp.Addr()
	tmp.Close()

	p := newTestPool(t, PoolConfig{
		Retry: Retry{MaxAttempts: 50, BaseDelay: 20 * time.Millisecond,
			MaxDelay: 20 * time.Millisecond, Jitter: -1},
	})
	started := make(chan *Server, 1)
	go func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			srv, err := NewServer(addr, func(pe *Peer) Handler {
				return func(_ context.Context, msg any) (any, error) { return pong{N: msg.(ping).N + 1}, nil }
			})
			if err == nil {
				started <- srv
				return
			}
			if time.Now().After(deadline) {
				started <- nil
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	reply, err := p.CallRetry(ctx, addr, ping{N: 1})
	if srv := <-started; srv != nil {
		defer srv.Close()
	}
	if err != nil {
		t.Fatalf("CallRetry never succeeded: %v", err)
	}
	if reply.(pong).N != 2 {
		t.Fatalf("reply = %+v", reply)
	}
	if p.Stats().Retries == 0 {
		t.Fatal("no retries counted despite initial connection refusals")
	}
}

func TestPoolCallRetryDoesNotRetryRemoteError(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", func(pe *Peer) Handler {
		return func(_ context.Context, msg any) (any, error) { return nil, errors.New("refused by handler") }
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p := newTestPool(t, PoolConfig{Retry: Retry{MaxAttempts: 5, BaseDelay: time.Millisecond}})
	_, err = p.CallRetry(context.Background(), srv.Addr(), ping{N: 1})
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if got := p.Stats().Retries; got != 0 {
		t.Fatalf("retries = %d, want 0 for a remote (handler) error", got)
	}
}

func TestPoolAppliesRPCTimeout(t *testing.T) {
	// A server that accepts but never replies: the pool's RPCTimeout must
	// bound the call even though the caller's ctx has no deadline.
	block := make(chan struct{})
	srv, err := NewServer("127.0.0.1:0", func(pe *Peer) Handler {
		return func(_ context.Context, msg any) (any, error) { <-block; return pong{}, nil }
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(block); srv.Close() }()
	p := newTestPool(t, PoolConfig{RPCTimeout: 50 * time.Millisecond})
	start := time.Now()
	_, err = p.Call(context.Background(), srv.Addr(), ping{N: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("call blocked %v despite RPCTimeout", elapsed)
	}
}

func TestPoolCloseFailsCalls(t *testing.T) {
	srv := echoServer(t)
	p := NewClientPool(PoolConfig{DialTimeout: time.Second})
	if _, err := p.Call(context.Background(), srv.Addr(), ping{N: 1}); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if _, err := p.Call(context.Background(), srv.Addr(), ping{N: 2}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestPoolConcurrentCallsShareConnection(t *testing.T) {
	srv := echoServer(t)
	p := newTestPool(t, PoolConfig{})
	// Warm the cache so the concurrent burst cannot race the first dial.
	if _, err := p.Call(context.Background(), srv.Addr(), ping{N: 0}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Call(context.Background(), srv.Addr(), ping{N: i}); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	stats := p.Stats()
	if stats.Dials != 1 || stats.Reuses != 32 {
		t.Fatalf("stats = %+v, want 1 dial and 32 reuses", stats)
	}
}

// --- dial-per-RPC vs. pooled ------------------------------------------

func BenchmarkDialPerRPC(b *testing.B) {
	srv, err := NewServer("127.0.0.1:0", func(pe *Peer) Handler {
		return func(_ context.Context, msg any) (any, error) { return pong{N: msg.(ping).N + 1}, nil }
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		peer, err := Dial(srv.Addr(), time.Second, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := peer.Call(ctx, ping{N: i}); err != nil {
			b.Fatal(err)
		}
		peer.Close()
	}
}

func BenchmarkPooledRPC(b *testing.B) {
	srv, err := NewServer("127.0.0.1:0", func(pe *Peer) Handler {
		return func(_ context.Context, msg any) (any, error) { return pong{N: msg.(ping).N + 1}, nil }
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	p := NewClientPool(PoolConfig{DialTimeout: time.Second})
	defer p.Close()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Call(ctx, srv.Addr(), ping{N: i}); err != nil {
			b.Fatal(err)
		}
	}
}
