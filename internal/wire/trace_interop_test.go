package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"testing"
)

// legacyEnvelope is the wire envelope as peers built before trace
// propagation encode it: identical shape, no Trace field. Gob matches
// struct fields by name, so the two layouts interoperate as long as the
// shared fields agree — which is exactly what this file pins.
type legacyEnvelope struct {
	ID   uint64
	Kind Kind
	Err  string
	Msg  any
}

// TestEnvelopeTraceMixedVersionInterop proves the Envelope.Trace field
// is backward compatible in both directions: a new peer's traced frame
// decodes on an old peer (the unknown field is skipped), and an old
// peer's frame decodes on a new peer with Trace empty. A mixed-version
// pool must keep exchanging every message kind while traces degrade
// gracefully to "not propagated".
func TestEnvelopeTraceMixedVersionInterop(t *testing.T) {
	const tp = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"

	// New sender → old receiver.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&Envelope{
		ID: 9, Kind: KindRequest, Msg: pingMsg{Seq: 4}, Trace: tp,
	}); err != nil {
		t.Fatal(err)
	}
	var old legacyEnvelope
	if err := gob.NewDecoder(&buf).Decode(&old); err != nil {
		t.Fatalf("old peer failed to decode traced envelope: %v", err)
	}
	if old.ID != 9 || old.Kind != KindRequest {
		t.Fatalf("old peer decoded ID=%d Kind=%d, want 9/%d", old.ID, old.Kind, KindRequest)
	}
	if m, ok := old.Msg.(pingMsg); !ok || m.Seq != 4 {
		t.Fatalf("old peer decoded Msg=%#v, want pingMsg{Seq: 4}", old.Msg)
	}

	// Old sender → new receiver.
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(&legacyEnvelope{
		ID: 11, Kind: KindReply, Err: "boom",
	}); err != nil {
		t.Fatal(err)
	}
	var env Envelope
	if err := gob.NewDecoder(&buf).Decode(&env); err != nil {
		t.Fatalf("new peer failed to decode legacy envelope: %v", err)
	}
	if env.ID != 11 || env.Kind != KindReply || env.Err != "boom" {
		t.Fatalf("new peer decoded %+v, want ID=11 Kind=%d Err=boom", env, KindReply)
	}
	if env.Trace != "" {
		t.Fatalf("legacy envelope decoded with Trace=%q, want empty", env.Trace)
	}
}

// TestConnRecvLegacyFrame runs the old layout through the real framed
// decoder: length prefix plus legacy gob payload must Recv cleanly with
// Trace empty.
func TestConnRecvLegacyFrame(t *testing.T) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&legacyEnvelope{
		ID: 3, Kind: KindOneWay, Msg: pingMsg{Seq: 1},
	}); err != nil {
		t.Fatal(err)
	}
	frame := binary.BigEndian.AppendUint32(nil, uint32(payload.Len()))
	frame = append(frame, payload.Bytes()...)

	conn := NewConn(&byteConn{r: bytes.NewReader(frame)})
	env, err := conn.Recv()
	if err != nil {
		t.Fatalf("Recv legacy frame: %v", err)
	}
	if env.ID != 3 || env.Kind != KindOneWay || env.Trace != "" {
		t.Fatalf("Recv legacy frame = %+v, want ID=3 Kind=%d Trace empty", env, KindOneWay)
	}
}
