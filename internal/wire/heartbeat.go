package wire

import (
	"fmt"
	"time"
)

// Heartbeats detect half-open connections: a powered-off peer whose TCP
// endpoint never RSTs would otherwise leave a shadow waiting forever for
// a JobDone that cannot come. Ping/pong frames are handled entirely
// inside the Peer — application handlers never see them.

// pingMsg and pongMsg are internal heartbeat frames.
type pingMsg struct{ Seq uint64 }
type pongMsg struct{ Seq uint64 }

// Heartbeat configures liveness probing on a Peer.
type Heartbeat struct {
	// Interval between pings (0 disables heartbeats).
	Interval time.Duration
	// Timeout after a ping with no traffic before the connection is
	// declared dead and closed (default 3×Interval).
	Timeout time.Duration
}

func (h *Heartbeat) sanitize() {
	if h.Interval > 0 && h.Timeout <= 0 {
		h.Timeout = 3 * h.Interval
	}
}

// DialHeartbeat is Dial plus a heartbeat: the returned peer pings the
// remote side and closes (failing pending calls, firing Done) when the
// remote stops answering.
func DialHeartbeat(addr string, timeout time.Duration, handler Handler, hb Heartbeat) (*Peer, error) {
	p, err := Dial(addr, timeout, handler)
	if err != nil {
		return nil, err
	}
	p.StartHeartbeat(hb)
	return p, nil
}

// StartHeartbeat begins liveness probing on an existing peer. Calling it
// with a zero interval is a no-op.
func (p *Peer) StartHeartbeat(hb Heartbeat) {
	hb.sanitize()
	if hb.Interval <= 0 {
		return
	}
	p.markHeard() // grace: measure staleness from heartbeat start
	go p.heartbeatLoop(hb)
}

func (p *Peer) heartbeatLoop(hb Heartbeat) {
	ticker := time.NewTicker(hb.Interval)
	defer ticker.Stop()
	var seq uint64
	for {
		select {
		case <-p.done:
			return
		case <-ticker.C:
			seq++
			if err := p.conn.Send(Envelope{
				ID:   seq,
				Kind: KindPing,
				Msg:  pingMsg{Seq: seq},
			}); err != nil {
				p.conn.Close()
				return
			}
			// The reader loop records lastPong; check staleness.
			p.mu.Lock()
			last := p.lastHeard
			p.mu.Unlock()
			if time.Since(last) > hb.Timeout {
				// Remote unresponsive: tear the connection down so the
				// reader loop fails everything and Done fires.
				p.conn.Close()
				return
			}
		}
	}
}

// markHeard stamps receipt of any frame (all traffic proves liveness).
func (p *Peer) markHeard() {
	p.mu.Lock()
	p.lastHeard = time.Now()
	p.mu.Unlock()
}

// handleHeartbeat processes ping/pong frames inside the reader loop; it
// reports whether the envelope was a heartbeat frame.
func (p *Peer) handleHeartbeat(env Envelope) bool {
	switch env.Kind {
	case KindPing:
		// Answer immediately; failure will surface in the reader loop.
		_ = p.conn.Send(Envelope{ID: env.ID, Kind: KindPong, Msg: pongMsg{Seq: env.ID}})
		return true
	case KindPong:
		return true
	default:
		return false
	}
}

// String renders heartbeat config for logs.
func (h Heartbeat) String() string {
	if h.Interval <= 0 {
		return "heartbeat off"
	}
	return fmt.Sprintf("heartbeat every %v (timeout %v)", h.Interval, h.Timeout)
}
