package wire

import (
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipeConns returns a Conn over a FaultConn on the local side of a
// net.Pipe, plus the remote raw end.
func pipeConns(t *testing.T) (*Conn, *FaultConn, net.Conn) {
	t.Helper()
	local, remote := net.Pipe()
	fc := NewFaultConn(local)
	conn := NewConn(fc)
	t.Cleanup(func() { conn.Close(); remote.Close() })
	return conn, fc, remote
}

func TestSendStalledWriterFailsByDeadline(t *testing.T) {
	conn, fc, _ := pipeConns(t)
	conn.SetFrameTimeouts(50*time.Millisecond, 0)
	fc.SetPlan(FaultPlan{StallWrites: true})
	start := time.Now()
	err := conn.Send(Envelope{ID: 1, Kind: KindPing, Msg: pingMsg{Seq: 1}})
	if err == nil {
		t.Fatal("Send to a stalled peer succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Send blocked %v; the 50ms write deadline never fired", elapsed)
	}
	// The half-written stream is poisoned: the conn must now be closed.
	if err := conn.Send(Envelope{ID: 2, Kind: KindPing, Msg: pingMsg{Seq: 2}}); err == nil {
		t.Fatal("Send succeeded on a connection poisoned by a write timeout")
	}
}

func TestSendWithoutDeadlineStillSucceeds(t *testing.T) {
	conn, _, remote := pipeConns(t)
	go io.Copy(io.Discard, remote) //nolint:errcheck // drain
	if err := conn.Send(Envelope{ID: 1, Kind: KindPing, Msg: pingMsg{Seq: 1}}); err != nil {
		t.Fatal(err)
	}
}

func TestSendPartialWriteClosesConn(t *testing.T) {
	conn, fc, remote := pipeConns(t)
	go io.Copy(io.Discard, remote) //nolint:errcheck // drain what does arrive
	fc.SetPlan(FaultPlan{WriteCap: 2})
	if err := conn.Send(Envelope{ID: 1, Kind: KindPing, Msg: pingMsg{Seq: 1}}); err == nil {
		t.Fatal("Send with partial writes succeeded")
	}
	if err := conn.Send(Envelope{ID: 2, Kind: KindPing, Msg: pingMsg{Seq: 2}}); err == nil {
		t.Fatal("Send succeeded after a partial frame desynchronized the stream")
	}
}

func TestSendResetFailsImmediately(t *testing.T) {
	conn, fc, _ := pipeConns(t)
	fc.SetPlan(FaultPlan{Reset: true})
	start := time.Now()
	err := conn.Send(Envelope{ID: 1, Kind: KindPing, Msg: pingMsg{Seq: 1}})
	if !errors.Is(err, ErrFaultReset) {
		t.Fatalf("err = %v, want ErrFaultReset", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("reset took %v", elapsed)
	}
}

func TestSendDropMidFrameSeversConnection(t *testing.T) {
	conn, fc, remote := pipeConns(t)
	go io.Copy(io.Discard, remote)           //nolint:errcheck // drain the leading bytes
	fc.SetPlan(FaultPlan{DropAfterBytes: 6}) // header (4) + 2 payload bytes
	if err := conn.Send(Envelope{ID: 1, Kind: KindPing, Msg: pingMsg{Seq: 1}}); !errors.Is(err, ErrFaultReset) {
		t.Fatalf("err = %v, want ErrFaultReset mid-frame", err)
	}
}

func TestRecvMidFrameStallFailsByFrameTimeout(t *testing.T) {
	local, remote := net.Pipe()
	defer remote.Close()
	conn := NewConn(local)
	defer conn.Close()
	conn.SetFrameTimeouts(0, 50*time.Millisecond)
	go remote.Write([]byte{0x00, 0x00}) //nolint:errcheck // 2 of 4 header bytes, then silence
	start := time.Now()
	if _, err := conn.Recv(); err == nil {
		t.Fatal("Recv of a half-delivered frame succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Recv blocked %v; the 50ms frame deadline never fired", elapsed)
	}
}

func TestRecvIdleConnectionNotTimedOut(t *testing.T) {
	local, remote := net.Pipe()
	receiver := NewConn(local)
	sender := NewConn(remote)
	defer receiver.Close()
	defer sender.Close()
	receiver.SetFrameTimeouts(0, 40*time.Millisecond)
	go func() {
		// Far longer than the frame timeout: idleness between frames must
		// not trip the deadline.
		time.Sleep(150 * time.Millisecond)
		sender.Send(Envelope{ID: 7, Kind: KindPing, Msg: pingMsg{Seq: 7}}) //nolint:errcheck
	}()
	env, err := receiver.Recv()
	if err != nil {
		t.Fatalf("idle connection timed out: %v", err)
	}
	if env.ID != 7 {
		t.Fatalf("env = %+v", env)
	}
}

func TestRecvConsecutiveFramesRearmDeadline(t *testing.T) {
	local, remote := net.Pipe()
	receiver := NewConn(local)
	sender := NewConn(remote)
	defer receiver.Close()
	defer sender.Close()
	receiver.SetFrameTimeouts(0, 50*time.Millisecond)
	go func() {
		for i := uint64(1); i <= 3; i++ {
			sender.Send(Envelope{ID: i, Kind: KindPing, Msg: pingMsg{Seq: i}}) //nolint:errcheck
			time.Sleep(80 * time.Millisecond)                                  // idle gap > frame timeout
		}
	}()
	for i := uint64(1); i <= 3; i++ {
		env, err := receiver.Recv()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if env.ID != i {
			t.Fatalf("frame %d: env = %+v", i, env)
		}
	}
}

func TestPeerCallAgainstStalledConnFailsFast(t *testing.T) {
	// End-to-end through a Peer: a peer whose writes stall must fail
	// Call via the write deadline, not hang holding writeMu forever.
	local, remote := net.Pipe()
	defer remote.Close()
	fc := NewFaultConn(local)
	conn := NewConn(fc)
	conn.SetFrameTimeouts(50*time.Millisecond, 0)
	fc.SetPlan(FaultPlan{StallWrites: true, StallReads: true})
	peer := NewPeer(conn, nil)
	defer peer.Close()
	done := make(chan error, 1)
	go func() {
		_, err := peer.Call(context.Background(), ping{N: 1})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Call over a stalled connection succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Call over a stalled connection hung past the write deadline")
	}
}

func TestFaultLatencyDelaysWrites(t *testing.T) {
	conn, fc, remote := pipeConns(t)
	go io.Copy(io.Discard, remote) //nolint:errcheck // drain
	fc.SetPlan(FaultPlan{LatencyMin: 40 * time.Millisecond, LatencyMax: 60 * time.Millisecond, Seed: 7})
	start := time.Now()
	if err := conn.Send(Envelope{ID: 1, Kind: KindPing, Msg: pingMsg{Seq: 1}}); err != nil {
		t.Fatal(err)
	}
	// A frame is several Write calls (length prefix + payload); each pays
	// the latency, so the floor is at least one LatencyMin.
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("Send took %v, want ≥ 40ms of injected latency", elapsed)
	}
}

func TestFaultCorruptionFailsLoudly(t *testing.T) {
	// A corrupted frame must surface as an error on some call — never as
	// a silently delivered wrong payload.
	local, remote := net.Pipe()
	fc := NewFaultConn(local)
	sender := NewConn(fc)
	receiver := NewConn(remote)
	defer sender.Close()
	defer receiver.Close()
	sender.SetFrameTimeouts(200*time.Millisecond, 0)
	receiver.SetFrameTimeouts(0, 500*time.Millisecond)
	fc.SetPlan(FaultPlan{CorruptProb: 1, Seed: 42})
	go func() {
		for i := uint64(1); i <= 4; i++ {
			sender.Send(Envelope{ID: i, Kind: KindPing, Msg: pingMsg{Seq: i}}) //nolint:errcheck
		}
	}()
	for {
		env, err := receiver.Recv()
		if err != nil {
			return // corruption detected: decode failure, bad prefix, or timeout
		}
		if env.Kind != KindPing {
			return // decoded garbage that is visibly not what was sent
		}
		// A flip can land in padding and still decode; keep reading —
		// with CorruptProb 1 and multi-write frames, a detectable flip
		// arrives quickly.
	}
}

func TestFaultFlapScheduleBlackholesAndHeals(t *testing.T) {
	conn, fc, remote := pipeConns(t)
	go io.Copy(io.Discard, remote) //nolint:errcheck // drain
	conn.SetFrameTimeouts(30*time.Millisecond, 0)
	// Down first is impossible (phase starts up), so use a short up
	// phase: writes land in the up window or fail in the down window,
	// and after a full period they must succeed again.
	fc.SetPlan(FaultPlan{FlapUp: 50 * time.Millisecond, FlapDown: 50 * time.Millisecond})
	if err := conn.Send(Envelope{ID: 1, Kind: KindPing, Msg: pingMsg{Seq: 1}}); err != nil {
		t.Fatalf("send during up phase: %v", err)
	}
	time.Sleep(60 * time.Millisecond) // into the down phase
	if err := conn.Send(Envelope{ID: 2, Kind: KindPing, Msg: pingMsg{Seq: 2}}); err == nil {
		t.Fatal("send during down phase succeeded")
	}
}

func TestFaultSetPlanWakesStalledOperation(t *testing.T) {
	// A stalled write with no deadline must heal the moment the plan is
	// cleared — not wait for a deadline that never comes.
	conn, fc, remote := pipeConns(t)
	go io.Copy(io.Discard, remote) //nolint:errcheck // drain
	fc.SetPlan(FaultPlan{StallWrites: true})
	done := make(chan error, 1)
	go func() {
		done <- conn.Send(Envelope{ID: 1, Kind: KindPing, Msg: pingMsg{Seq: 1}})
	}()
	select {
	case err := <-done:
		t.Fatalf("send completed while stalled: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	fc.SetPlan(FaultPlan{}) // heal
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("send after heal: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stalled send never woke after the plan was cleared")
	}
}
