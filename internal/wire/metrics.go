package wire

import (
	"condor/internal/telemetry"
)

// Process-wide wire-layer telemetry (see docs/OBSERVABILITY.md). All
// series are interned once here; the per-frame and per-RPC paths only
// touch atomics.
var (
	mRPCLatency = telemetry.NewHistogram("condor_wire_rpc_latency_seconds",
		"Round-trip latency of one wire RPC, from request send to matching reply.", nil)
	mRPCErrors = telemetry.NewCounter("condor_wire_rpc_errors_total",
		"Wire RPCs that failed in transport (connection died or deadline expired) before a reply arrived.")
	mBytesSent = telemetry.NewCounter("condor_wire_bytes_sent_total",
		"Payload and framing bytes written to wire connections.")
	mBytesRecv = telemetry.NewCounter("condor_wire_bytes_recv_total",
		"Payload and framing bytes read from wire connections.")
	mFramesSent = telemetry.NewCounter("condor_wire_frames_sent_total",
		"Frames written to wire connections (heartbeats included).")
	mFramesRecv = telemetry.NewCounter("condor_wire_frames_recv_total",
		"Frames read from wire connections (heartbeats included).")
	mHeartbeatsSent = telemetry.NewCounter("condor_wire_heartbeat_frames_sent_total",
		"Ping/pong keepalive frames written, so liveness traffic is visible separately from RPCs.")
	mHeartbeatsRecv = telemetry.NewCounter("condor_wire_heartbeat_frames_recv_total",
		"Ping/pong keepalive frames read.")
	mTraceBytesSent = telemetry.NewCounter("condor_wire_trace_bytes_sent_total",
		"Bytes of trace-context (traceparent) metadata carried on outbound envelopes.")
	mTraceBytesRecv = telemetry.NewCounter("condor_wire_trace_bytes_recv_total",
		"Bytes of trace-context (traceparent) metadata carried on inbound envelopes.")

	// Pool events mirror PoolStats process-wide, summed over every
	// ClientPool in the process.
	mPoolDials = telemetry.NewCounter("condor_wire_pool_dials_total",
		"Fresh connections opened by client pools.")
	mPoolReuses = telemetry.NewCounter("condor_wire_pool_reuses_total",
		"Calls served by an already-cached pooled connection.")
	mPoolReconnects = telemetry.NewCounter("condor_wire_pool_reconnects_total",
		"Dials that replaced a pooled connection found dead at use time.")
	mPoolEvictions = telemetry.NewCounter("condor_wire_pool_evictions_total",
		"Pooled connections closed by the janitor (idle or dead).")
	mPoolRetries = telemetry.NewCounter("condor_wire_pool_retries_total",
		"Extra attempts made by CallRetry after a transient transport fault.")
)
