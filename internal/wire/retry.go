package wire

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// Retry is a bounded exponential-backoff policy for transport-level
// failures. The zero value sanitizes to 3 attempts starting at 50ms,
// doubling up to 2s, with ±20% jitter. Only use it for idempotent
// operations (dials, polls, registrations, preempts): a retried request
// may execute twice when the first reply was lost in flight.
type Retry struct {
	// MaxAttempts is the total number of tries, first included (default 3).
	MaxAttempts int
	// BaseDelay is the backoff after the first failure (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 2s).
	MaxDelay time.Duration
	// Multiplier grows the backoff per failure (default 2; min 1).
	Multiplier float64
	// Jitter randomizes each backoff by ±Jitter fraction so a pool of
	// clients does not retry in lockstep (default 0.2; negative disables).
	Jitter float64
}

func (r *Retry) sanitize() {
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = 3
	}
	if r.BaseDelay <= 0 {
		r.BaseDelay = 50 * time.Millisecond
	}
	if r.MaxDelay <= 0 {
		r.MaxDelay = 2 * time.Second
	}
	if r.Multiplier < 1 {
		r.Multiplier = 2
	}
	if r.Jitter == 0 {
		r.Jitter = 0.2
	}
	if r.Jitter < 0 {
		r.Jitter = 0
	}
	if r.Jitter > 1 {
		r.Jitter = 1
	}
}

// Backoff returns the sleep after the attempt-th failure (1-based):
// BaseDelay·Multiplier^(attempt-1), capped at MaxDelay, jittered.
func (r Retry) Backoff(attempt int) time.Duration {
	r.sanitize()
	d := float64(r.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= r.Multiplier
		if d >= float64(r.MaxDelay) {
			break
		}
	}
	if d > float64(r.MaxDelay) {
		d = float64(r.MaxDelay)
	}
	if r.Jitter > 0 {
		d *= 1 - r.Jitter + 2*r.Jitter*rand.Float64()
	}
	return time.Duration(d)
}

// Retryable reports whether err is a transport-level failure worth
// retrying. A RemoteError means the peer's handler ran and failed —
// retrying would re-execute it, so it is final. Context errors mean the
// caller's deadline governs, not the transport. Everything else (dial
// refusals, resets, closed connections, I/O deadlines mid-frame) is a
// transport fault a fresh connection may fix.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	var remote *RemoteError
	if errors.As(err, &remote) {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// Do runs op under the policy: it returns op's result as soon as it
// succeeds, fails non-retryably, or exhausts MaxAttempts, backing off
// between attempts. ctx cancellation stops the loop between attempts
// (the in-flight op must bound itself with the same ctx).
func (r Retry) Do(ctx context.Context, op func() error) error {
	r.sanitize()
	var err error
	for attempt := 1; ; attempt++ {
		err = op()
		if err == nil || !Retryable(err) || attempt >= r.MaxAttempts {
			return err
		}
		timer := time.NewTimer(r.Backoff(attempt))
		select {
		case <-ctx.Done():
			timer.Stop()
			return err
		case <-timer.C:
		}
	}
}
