package wire

import (
	"bytes"
	"encoding/gob"
	"net"
	"testing"
	"testing/quick"
	"time"
)

type blobMsg struct{ Data []byte }

func init() { gob.Register(blobMsg{}) }

// pipePair returns two Conns joined by an in-memory pipe, with the
// writes pumped on a goroutine so Send/Recv do not deadlock.
func pipePair() (*Conn, *Conn, func()) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b), func() { a.Close(); b.Close() }
}

// TestPropertyFrameRoundTrip: arbitrary payload bytes survive framing.
func TestPropertyFrameRoundTrip(t *testing.T) {
	property := func(data []byte, id uint64, kind uint8) bool {
		ca, cb, closeAll := pipePair()
		defer closeAll()
		env := Envelope{
			ID:   id,
			Kind: Kind(kind%3) + KindRequest,
			Msg:  blobMsg{Data: data},
		}
		errCh := make(chan error, 1)
		go func() { errCh <- ca.Send(env) }()
		got, err := cb.Recv()
		if err != nil {
			return false
		}
		if sendErr := <-errCh; sendErr != nil {
			return false
		}
		if got.ID != env.ID || got.Kind != env.Kind {
			return false
		}
		msg, ok := got.Msg.(blobMsg)
		if !ok {
			return false
		}
		return bytes.Equal(msg.Data, data)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyTruncatedFramesNeverPanic: cutting a valid frame at any
// point yields an error, never a panic or a phantom message.
func TestPropertyTruncatedFramesNeverPanic(t *testing.T) {
	// Build one valid frame by capturing what Send writes.
	ca, cb, closeAll := pipePair()
	var frame []byte
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 64<<10)
		deadline := time.Now().Add(2 * time.Second)
		for {
			n, err := cbRead(cb, buf)
			if n > 0 {
				frame = append(frame, buf[:n]...)
			}
			if err != nil || len(frame) > 16 || time.Now().After(deadline) {
				return
			}
		}
	}()
	if err := ca.Send(Envelope{ID: 9, Kind: KindRequest, Msg: blobMsg{Data: []byte("payload")}}); err != nil {
		t.Fatal(err)
	}
	closeAll()
	<-done
	if len(frame) < 5 {
		t.Fatalf("captured only %d bytes", len(frame))
	}

	property := func(cutAt uint16) bool {
		cut := int(cutAt) % len(frame)
		a, b := net.Pipe()
		conn := NewConn(b)
		go func() {
			a.Write(frame[:cut])
			a.Close()
		}()
		_, err := conn.Recv()
		b.Close()
		return err != nil
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// cbRead reads raw bytes from the Conn's underlying pipe side.
func cbRead(c *Conn, buf []byte) (int, error) {
	return c.raw.Read(buf)
}
