package wire

import (
	"context"
	"net"
	"testing"
	"time"
)

func TestHeartbeatKeepsHealthyConnectionAlive(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", func(p *Peer) Handler {
		return func(_ context.Context, msg any) (any, error) { return msg, nil }
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	peer, err := DialHeartbeat(srv.Addr(), time.Second, nil,
		Heartbeat{Interval: 10 * time.Millisecond, Timeout: 40 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	// Stay quiet for several timeouts; pongs must keep the peer alive.
	time.Sleep(150 * time.Millisecond)
	select {
	case <-peer.Done():
		t.Fatal("healthy connection was torn down by its own heartbeat")
	default:
	}
	// Still functional.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := peer.Call(ctx, ping{N: 1}); err != nil {
		t.Fatalf("call after heartbeats: %v", err)
	}
}

func TestHeartbeatDetectsBlackholedPeer(t *testing.T) {
	// A listener that accepts and then ignores the connection entirely —
	// the half-open scenario a powered-off machine produces.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c // hold it open, never read
		}
	}()
	peer, err := DialHeartbeat(l.Addr().String(), time.Second, nil,
		Heartbeat{Interval: 10 * time.Millisecond, Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	select {
	case <-peer.Done():
		// detected: good
	case <-time.After(5 * time.Second):
		t.Fatal("blackholed peer never detected")
	}
	select {
	case c := <-accepted:
		c.Close()
	default:
	}
}

func TestHeartbeatZeroIntervalIsNoop(t *testing.T) {
	srv := echoServer(t)
	peer, err := Dial(srv.Addr(), time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	peer.StartHeartbeat(Heartbeat{}) // no-op
	time.Sleep(20 * time.Millisecond)
	select {
	case <-peer.Done():
		t.Fatal("no-op heartbeat killed the connection")
	default:
	}
}

func TestHeartbeatString(t *testing.T) {
	if (Heartbeat{}).String() != "heartbeat off" {
		t.Fatal("off rendering")
	}
	h := Heartbeat{Interval: time.Second}
	h.sanitize()
	if h.Timeout != 3*time.Second {
		t.Fatalf("default timeout = %v", h.Timeout)
	}
}
