package telemetry

import (
	"math"
	"runtime"
	"sync"
	"testing"
)

// TestHistogramContention hammers one histogram from GOMAXPROCS
// goroutines and asserts no observation is lost or double-counted: the
// total count, the per-bucket cumulative counts, and the float sum must
// all be exact. Run under -race (make race / make verify) this also
// proves the lock-free Observe path is data-race-free.
func TestHistogramContention(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("contended_seconds", "h", []float64{0.25, 0.5, 0.75})

	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	const perWorker = 50_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Deterministic spread: 0.1, 0.35, 0.6, 0.85 land in the
				// four buckets (≤0.25, ≤0.5, ≤0.75, +Inf) one each.
				h.Observe(float64((seed+i)%4)*0.25 + 0.1)
			}
		}(w)
	}
	wg.Wait()

	total := uint64(workers * perWorker)
	if got := h.Count(); got != total {
		t.Fatalf("count = %d, want %d (lost %d observations)", got, total, total-got)
	}
	// Every worker contributes exactly perWorker/4 observations per value
	// class (perWorker is a multiple of 4), so each bucket holds an exact
	// quarter of the total.
	quarter := total / 4
	var cum uint64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n != quarter {
			t.Errorf("bucket %d holds %d, want %d", i, n, quarter)
		}
		cum += n
	}
	if cum != total {
		t.Fatalf("bucket total = %d, want %d", cum, total)
	}
	// Sum of one full cycle 0.1+0.35+0.6+0.85 = 1.9 per 4 observations.
	wantSum := float64(total/4) * 1.9
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6*wantSum {
		t.Fatalf("sum = %g, want %g", got, wantSum)
	}
}

// TestCounterContention asserts counters are exact under the same load.
func TestCounterContention(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("contended_total", "h")
	g := r.Gauge("contended_gauge", "h")

	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	const perWorker = 100_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != uint64(workers*perWorker) {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
}
