package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// A Prometheus text-format parser. Two consumers: the exposition
// conformance test parses our own /metrics output back (what we emit
// must be machine-readable by the contract we claim), and the
// aggregation layer (condor-web, condor-status -watch) scrapes other
// daemons' pages without guessing at line shapes. It understands
// exactly the subset the format defines: HELP/TYPE comments, samples
// with optional label sets, and the escape sequences for label values
// (\\, \", \n) and HELP text (\\, \n). Other comment lines (including
// our "# exemplar" annotations) are skipped, per the format's
// parsers-ignore-comments rule.

// Sample is one parsed time series sample.
type Sample struct {
	// Name is the sample's metric name (for histograms this includes
	// the _bucket/_sum/_count suffix).
	Name string
	// Labels holds the decoded label pairs, insertion-ordered as they
	// appeared on the line.
	Labels []Label
	// Value is the sample value.
	Value float64
}

// Label is one decoded label pair.
type Label struct{ Name, Value string }

// Get returns the value of the named label ("" when absent).
func (s Sample) Get(name string) string {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// ParsedFamily groups the parse results for one metric name.
type ParsedFamily struct {
	Name    string
	Help    string
	Type    string // counter, gauge, histogram, untyped
	Samples []Sample
}

// ParsedPage is a fully parsed exposition page.
type ParsedPage struct {
	// Families maps each base metric name to its family. Histogram
	// samples file under the base name (TYPE line's name), not the
	// suffixed sample names.
	Families map[string]*ParsedFamily
	order    []string
}

// Family returns the named family (nil when absent).
func (p *ParsedPage) Family(name string) *ParsedFamily { return p.Families[name] }

// Value returns the value of the first sample matching name and every
// given label pair, and whether one was found. Pass labels as
// alternating name, value strings.
func (p *ParsedPage) Value(name string, labels ...string) (float64, bool) {
	fam := p.Families[familyBase(p, name)]
	if fam == nil {
		return 0, false
	}
	for _, s := range fam.Samples {
		if s.Name != name {
			continue
		}
		match := true
		for i := 0; i+1 < len(labels); i += 2 {
			if s.Get(labels[i]) != labels[i+1] {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// Names lists the family names in page order.
func (p *ParsedPage) Names() []string { return append([]string(nil), p.order...) }

// familyBase maps a (possibly suffixed) sample name to the family it
// files under.
func familyBase(p *ParsedPage, name string) string {
	if _, ok := p.Families[name]; ok {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, found := strings.CutSuffix(name, suf); found {
			if _, ok := p.Families[base]; ok {
				return base
			}
		}
	}
	return name
}

// ParseText parses a Prometheus text exposition page.
func ParseText(r io.Reader) (*ParsedPage, error) {
	page := &ParsedPage{Families: map[string]*ParsedFamily{}}
	family := func(name string) *ParsedFamily {
		if f, ok := page.Families[name]; ok {
			return f
		}
		f := &ParsedFamily{Name: name, Type: "untyped"}
		page.Families[name] = f
		page.order = append(page.order, name)
		return f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, family); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		f := family(familyBase(page, s.Name))
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return page, nil
}

// ParseTextString is ParseText over a string.
func ParseTextString(s string) (*ParsedPage, error) {
	return ParseText(strings.NewReader(s))
}

// parseComment handles "# HELP name text" and "# TYPE name kind";
// anything else after "#" is a free-form comment and is skipped.
func parseComment(line string, family func(string) *ParsedFamily) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		text := ""
		if len(fields) == 4 {
			text = unescapeHelp(fields[3])
		}
		family(fields[2]).Help = text
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		kind := fields[3]
		switch kind {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown TYPE %q", kind)
		}
		family(fields[2]).Type = kind
	}
	return nil
}

// parseSample decodes one "name{labels} value" line.
func parseSample(line string) (Sample, error) {
	var s Sample
	i := strings.IndexAny(line, "{ \t")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = tail
	}
	rest = strings.TrimSpace(rest)
	// A timestamp may trail the value; we never emit one but accept it.
	if j := strings.IndexAny(rest, " \t"); j >= 0 {
		rest = rest[:j]
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("sample %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels decodes "{a="x",b="y"}" handling \\, \", and \n escapes,
// returning the remainder after the closing brace.
func parseLabels(in string) ([]Label, string, error) {
	var labels []Label
	i := 1 // past '{'
	for {
		// Skip separators.
		for i < len(in) && (in[i] == ',' || in[i] == ' ') {
			i++
		}
		if i < len(in) && in[i] == '}' {
			return labels, in[i+1:], nil
		}
		eq := strings.IndexByte(in[i:], '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("malformed label set %q", in)
		}
		name := in[i : i+eq]
		if !validLabelName(name) {
			return nil, "", fmt.Errorf("invalid label name %q", name)
		}
		i += eq + 1
		if i >= len(in) || in[i] != '"' {
			return nil, "", fmt.Errorf("unquoted label value in %q", in)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(in) {
				return nil, "", fmt.Errorf("unterminated label value in %q", in)
			}
			c := in[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(in) {
					return nil, "", fmt.Errorf("dangling escape in %q", in)
				}
				switch in[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("unknown escape \\%c in %q", in[i+1], in)
				}
				i += 2
				continue
			}
			b.WriteByte(c)
			i++
		}
		labels = append(labels, Label{Name: name, Value: b.String()})
	}
}

// parseValue accepts the format's float spellings, +Inf/-Inf/NaN
// included.
func parseValue(v string) (float64, error) {
	switch v {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(v, 64)
}

var helpUnescaper = strings.NewReplacer(`\\`, `\`, `\n`, "\n")

func unescapeHelp(v string) string { return helpUnescaper.Replace(v) }

// validMetricName checks [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName checks [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// SortedSampleNames lists a family's distinct sample names (debugging
// aid for conformance failures).
func (f *ParsedFamily) SortedSampleNames() []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range f.Samples {
		if !seen[s.Name] {
			seen[s.Name] = true
			out = append(out, s.Name)
		}
	}
	sort.Strings(out)
	return out
}
