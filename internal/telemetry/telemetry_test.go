package telemetry

import (
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if again := r.Counter("test_total", "a counter"); again != c {
		t.Fatal("re-registering the same counter minted a new instance")
	}

	g := r.Gauge("test_gauge", "a gauge")
	g.Set(10)
	g.Add(-3)
	g.Dec()
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}

	text := r.Text()
	for _, want := range []string{
		"# HELP test_total a counter",
		"# TYPE test_total counter",
		"test_total 42",
		"# TYPE test_gauge gauge",
		"test_gauge 6",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestVecInterning(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("jobs_total", "per-state jobs", "state")
	a := v.With("idle")
	b := v.With("idle")
	if a != b {
		t.Fatal("With minted two counters for the same label value")
	}
	v.With("running").Add(3)
	a.Inc()

	text := r.Text()
	if !strings.Contains(text, `jobs_total{state="idle"} 1`) {
		t.Errorf("missing idle series:\n%s", text)
	}
	if !strings.Contains(text, `jobs_total{state="running"} 3`) {
		t.Errorf("missing running series:\n%s", text)
	}
	// HELP/TYPE must appear once per family, not per series.
	if n := strings.Count(text, "# TYPE jobs_total"); n != 1 {
		t.Errorf("TYPE line appears %d times, want 1", n)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.GaugeVec("g", "h", "name").With("a\"b\\c\nd").Set(1)
	if want := `g{name="a\"b\\c\nd"} 1`; !strings.Contains(r.Text(), want) {
		t.Errorf("escaped label missing %q:\n%s", want, r.Text())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got, want := h.Sum(), 102.65; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	text := r.Text()
	for _, want := range []string{
		// le is inclusive: 0.05 and 0.1 both land in the 0.1 bucket.
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_sum 102.65`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestHistogramVecSharesFamilyHeader(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("rpc_seconds", "rpc latency", "op", []float64{1})
	v.With("poll").ObserveDuration(500 * time.Millisecond)
	v.With("grant").Observe(2)
	text := r.Text()
	if !strings.Contains(text, `rpc_seconds_bucket{op="poll",le="1"} 1`) {
		t.Errorf("merged labels wrong:\n%s", text)
	}
	if !strings.Contains(text, `rpc_seconds_bucket{op="grant",le="+Inf"} 1`) {
		t.Errorf("grant series wrong:\n%s", text)
	}
	if n := strings.Count(text, "# HELP rpc_seconds"); n != 1 {
		t.Errorf("HELP appears %d times, want 1", n)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("sampled", "sampled at scrape", func() float64 { return 2.5 })
	if !strings.Contains(r.Text(), "sampled 2.5") {
		t.Errorf("sampled gauge missing:\n%s", r.Text())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("redeclaring a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "h")
}

func TestServeMetricsAndHealth(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total", "h").Add(7)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if body := get("/metrics"); !strings.Contains(body, "served_total 7") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if body := get("/healthz"); !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %q", body)
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}
