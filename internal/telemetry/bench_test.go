package telemetry

import (
	"testing"
	"time"
)

// BenchmarkTelemetryObserve is the hot-path contract: one histogram
// observation must be allocation-free (the acceptance bar for putting it
// on the wire layer's per-RPC path). Run with -benchmem; the baseline in
// BENCH_baseline.json records 0 allocs/op.
func BenchmarkTelemetryObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "h", DefBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
	if allocs := testing.AllocsPerRun(1000, func() { h.Observe(1e-3) }); allocs != 0 {
		b.Fatalf("Observe allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkTelemetryObserveParallel measures the contended case — every
// poll goroutine of a big cycle observing into the same histogram.
func BenchmarkTelemetryObserveParallel(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_par_seconds", "h", DefBuckets)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			h.Observe(float64(i%1000) * 1e-6)
		}
	})
}

// BenchmarkTelemetryCounter measures the counter fast path.
func BenchmarkTelemetryCounter(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkTelemetryObserveDuration covers the time.Duration adapter the
// instrumentation sites actually call.
func BenchmarkTelemetryObserveDuration(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_dur_seconds", "h", DefBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveDuration(time.Duration(i%1000) * time.Microsecond)
	}
}
