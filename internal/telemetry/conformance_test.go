package telemetry

import (
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestExpositionConformance round-trips our own /metrics output through
// the format parser: every family we emit must come back with the right
// type, every hostile label value must survive escaping, and the
// histogram triplet must be internally consistent. This is the contract
// the Content-Type header claims (text format 0.0.4).
func TestExpositionConformance(t *testing.T) {
	reg := NewRegistry()

	c := reg.Counter("conf_requests_total", "Requests with a \\ backslash and\na newline in HELP.")
	c.Add(42)

	// Hostile label values: backslash, quote, newline, and the
	// combination an attacker would pick to break a line-oriented
	// parser.
	vec := reg.CounterVec("conf_labeled_total", "Labeled series.", "path")
	hostile := []string{
		`plain`,
		`back\slash`,
		`quo"te`,
		"new\nline",
		`all\"of` + "\nthem",
	}
	for i, v := range hostile {
		vec.With(v).Add(uint64(i + 1))
	}

	g := reg.Gauge("conf_depth", "A gauge.")
	g.Set(-7)

	h := reg.Histogram("conf_latency_seconds", "A histogram.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}

	page, err := ParseTextString(reg.Text())
	if err != nil {
		t.Fatalf("our own exposition output does not parse: %v\n%s", err, reg.Text())
	}

	cf := page.Family("conf_requests_total")
	if cf == nil || cf.Type != "counter" {
		t.Fatalf("conf_requests_total family = %+v, want counter", cf)
	}
	if want := "Requests with a \\ backslash and\na newline in HELP."; cf.Help != want {
		t.Errorf("HELP round trip = %q, want %q", cf.Help, want)
	}
	if v, ok := page.Value("conf_requests_total"); !ok || v != 42 {
		t.Errorf("conf_requests_total = %v ok=%v, want 42", v, ok)
	}

	for i, hv := range hostile {
		v, ok := page.Value("conf_labeled_total", "path", hv)
		if !ok {
			t.Errorf("label value %q did not survive the round trip", hv)
			continue
		}
		if v != float64(i+1) {
			t.Errorf("series for %q = %v, want %d", hv, v, i+1)
		}
	}

	if v, ok := page.Value("conf_depth"); !ok || v != -7 {
		t.Errorf("conf_depth = %v ok=%v, want -7", v, ok)
	}

	hf := page.Family("conf_latency_seconds")
	if hf == nil || hf.Type != "histogram" {
		t.Fatalf("conf_latency_seconds family = %+v, want histogram", hf)
	}
	// Histogram invariants: buckets cumulative and monotone, +Inf
	// bucket equals _count, _sum matches.
	var last float64
	for _, le := range []string{"0.1", "1", "10", "+Inf"} {
		v, ok := page.Value("conf_latency_seconds_bucket", "le", le)
		if !ok {
			t.Fatalf("bucket le=%q missing", le)
		}
		if v < last {
			t.Errorf("bucket le=%q = %v not monotone (prev %v)", le, v, last)
		}
		last = v
	}
	if inf, _ := page.Value("conf_latency_seconds_bucket", "le", "+Inf"); inf != 4 {
		t.Errorf("+Inf bucket = %v, want 4", inf)
	}
	if cnt, _ := page.Value("conf_latency_seconds_count"); cnt != 4 {
		t.Errorf("_count = %v, want 4", cnt)
	}
	if sum, _ := page.Value("conf_latency_seconds_sum"); math.Abs(sum-55.55) > 1e-9 {
		t.Errorf("_sum = %v, want 55.55", sum)
	}
}

// TestExpositionContentType pins the version header the text format
// requires — scrapers negotiate on it.
func TestExpositionContentType(t *testing.T) {
	rec := httptest.NewRecorder()
	NewRegistry().Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	got := rec.Header().Get("Content-Type")
	want := "text/plain; version=0.0.4; charset=utf-8"
	if got != want {
		t.Fatalf("Content-Type = %q, want %q", got, want)
	}
}

// TestExemplarCommentsAreSkipped: our exemplar annotations ride comment
// lines; a conforming parser (ours included) must pass over them.
func TestExemplarCommentsAreSkipped(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("conf_ex_seconds", "With exemplar.", []float64{1})
	h.ObserveExemplar(0.5, "trace=00112233 span=4455")
	text := reg.Text()
	if !strings.Contains(text, "# exemplar") {
		t.Fatalf("expected exemplar comment in:\n%s", text)
	}
	page, err := ParseTextString(text)
	if err != nil {
		t.Fatalf("exemplar comment broke parsing: %v", err)
	}
	if cnt, _ := page.Value("conf_ex_seconds_count"); cnt != 1 {
		t.Fatalf("_count = %v, want 1", cnt)
	}
}

// TestParseRejectsGarbage: the parser must fail loudly on malformed
// pages, not quietly mis-ingest them.
func TestParseRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"no_value_here\n",
		"1leading_digit 3\n",
		`m{l="unterminated} 1` + "\n",
		`m{l="x"} notanumber` + "\n",
		`m{l="bad\escape"} 1` + "\n",
		"# TYPE m wat\n",
	} {
		if _, err := ParseTextString(bad); err == nil {
			t.Errorf("ParseTextString(%q) accepted garbage", bad)
		}
	}
}

// TestParseHTTPBody exercises the parser against a live handler the way
// condor-web's scraper uses it.
func TestParseHTTPBody(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("conf_live_total", "Live.").Add(3)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	page, err := ParseTextString(string(body))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := page.Value("conf_live_total"); !ok || v != 3 {
		t.Fatalf("conf_live_total = %v ok=%v, want 3", v, ok)
	}
}
