package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// The /events endpoint: the bus rendered as a Server-Sent Events
// stream, the wire format every browser speaks natively. Each bus event
// becomes one SSE frame:
//
//	id: <seq>
//	event: <kind>
//	data: <BusEvent as JSON>
//
// followed by a blank line. A comment frame (": keepalive") rides the
// stream periodically so proxies and the browser's EventSource can tell
// a quiet pool from a dead connection. The handler subscribes one
// bounded ring per connection: a stalled client drops its own oldest
// events (visible as gaps in the id sequence and in
// condor_bus_events_dropped_total) and never backpressures a publisher.

// SSEKeepalive is the comment-frame interval on /events streams.
const SSEKeepalive = 15 * time.Second

// SSEHandler streams bus onto each connection as Server-Sent Events.
// capacity sizes the per-connection ring (<=0 selects the default).
func SSEHandler(bus *Bus, capacity int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("X-Accel-Buffering", "no") // defeat proxy buffering
		w.WriteHeader(http.StatusOK)
		fmt.Fprintf(w, ": condor event stream\n\n")
		fl.Flush()

		sub := bus.Subscribe(capacity)
		defer sub.Close()
		done := req.Context().Done()
		keepalive := time.NewTicker(SSEKeepalive)
		defer keepalive.Stop()
		for {
			// Drain everything buffered before blocking again, so one
			// flush covers a burst.
			wrote := false
			for {
				ev, ok := sub.TryNext()
				if !ok {
					break
				}
				if err := writeSSE(w, ev); err != nil {
					return
				}
				wrote = true
			}
			if wrote {
				fl.Flush()
			}
			select {
			case <-done:
				return
			case <-keepalive.C:
				if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
					return
				}
				fl.Flush()
			case <-sub.notify:
			}
		}
	})
}

// writeSSE renders one event as an SSE frame.
func writeSSE(w http.ResponseWriter, ev BusEvent) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data)
	return err
}
