// Concurrency coverage for the operational HTTP surface: handler and
// readiness registration racing active Serve listeners, and the
// /traces and /accounting endpoints under many simultaneous readers
// with live writers. These tests carry their weight under -race (the
// Makefile's race and chaos targets); without it they are still a
// smoke test that nothing deadlocks or panics.
package telemetry_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"condor/internal/accounting"
	"condor/internal/telemetry"
	"condor/internal/trace"
)

// TestServeConcurrentRegistration churns Handle, RegisterReadiness and
// UnregisterReadiness from many goroutines while other goroutines start
// and stop Serve listeners and hammer a long-lived listener's /metrics
// and /healthz. The registries are process-global; any missing lock
// shows up under -race.
func TestServeConcurrentRegistration(t *testing.T) {
	srv, err := telemetry.Serve("127.0.0.1:0", telemetry.Default)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Handler registration churn: a fixed pattern set, re-registered
	// repeatedly (replacement is documented behaviour), so the registry
	// does not grow without bound.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pattern := fmt.Sprintf("/conc-extra-%d", i)
			h := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
				fmt.Fprint(w, "ok")
			})
			for {
				select {
				case <-stop:
					return
				default:
				}
				telemetry.Handle(pattern, h)
				time.Sleep(time.Millisecond)
			}
		}(i)
	}

	// Readiness churn: register, evaluate, unregister.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("conc-check-%d", i)
			for {
				select {
				case <-stop:
					return
				default:
				}
				telemetry.RegisterReadiness(name, func() error { return fmt.Errorf("busy") })
				_ = telemetry.ReadinessFailures()
				telemetry.UnregisterReadiness(name)
				time.Sleep(time.Millisecond)
			}
		}(i)
	}

	// Listener churn: every new Serve snapshot-copies the extra-handler
	// registry while the churners mutate it.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s, err := telemetry.Serve("127.0.0.1:0", telemetry.Default)
				if err != nil {
					t.Error(err)
					return
				}
				s.Close()
				time.Sleep(5 * time.Millisecond)
			}
		}()
	}

	// Scrapers against the long-lived listener.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, path := range []string{"/metrics", "/healthz"} {
					resp, err := http.Get("http://" + srv.Addr() + path)
					if err != nil {
						t.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
				}
			}
		}()
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	// The registries must still work after the churn.
	telemetry.RegisterReadiness("conc-final", func() error { return fmt.Errorf("down") })
	if f := telemetry.ReadinessFailures(); len(f) == 0 {
		t.Error("readiness registry lost registrations after concurrent churn")
	}
	telemetry.UnregisterReadiness("conc-final")
}

// TestTracesAccountingConcurrentReaders serves /traces and /accounting
// to 50 simultaneous readers while writers keep recording spans and
// metering jobs. Every response must stay valid JSON — a snapshot torn
// by a concurrent writer would not.
func TestTracesAccountingConcurrentReaders(t *testing.T) {
	srv, err := telemetry.Serve("127.0.0.1:0", telemetry.Default)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	var writers sync.WaitGroup
	for i := 0; i < 4; i++ {
		writers.Add(1)
		go func(i int) {
			defer writers.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				sp := trace.StartRoot("conc-span")
				sp.SetJob(fmt.Sprintf("conc-job-%d-%d", i, n))
				sp.SetAttr("writer", fmt.Sprintf("%d", i))
				sp.Finish()
				jobID := fmt.Sprintf("conc-acct-%d-%d", i, n%8)
				m := accounting.Default.Job(jobID, "conc", "ws0")
				m.ExecTime(time.Microsecond)
				m.Syscall(64, time.Microsecond)
				if n%8 == 7 {
					accounting.Default.Retire(jobID)
				}
				// Throttle: the writers' job is to race the readers, not
				// to make each /traces page as expensive as possible.
				time.Sleep(200 * time.Microsecond)
			}
		}(i)
	}

	const readers = 50
	var rg sync.WaitGroup
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for n := 0; n < 4; n++ {
				for _, path := range []string{"/traces", "/accounting"} {
					resp, err := http.Get("http://" + srv.Addr() + path)
					if err != nil {
						errs <- err
						return
					}
					body, err := io.ReadAll(resp.Body)
					resp.Body.Close()
					if err != nil {
						errs <- err
						return
					}
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("%s: %s", path, resp.Status)
						return
					}
					var page map[string]any
					if err := json.Unmarshal(body, &page); err != nil {
						errs <- fmt.Errorf("%s returned invalid JSON under load: %w", path, err)
						return
					}
				}
			}
		}()
	}
	rg.Wait()
	close(stop)
	writers.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
