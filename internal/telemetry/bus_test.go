package telemetry

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestBusDeliversInOrder(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(16)
	defer sub.Close()
	for i := 0; i < 5; i++ {
		b.Publish(BusEvent{Kind: "grant", Detail: fmt.Sprint(i)})
	}
	for i := 0; i < 5; i++ {
		ev, ok := sub.TryNext()
		if !ok {
			t.Fatalf("event %d missing", i)
		}
		if ev.Detail != fmt.Sprint(i) {
			t.Fatalf("event %d = %q, want %q", i, ev.Detail, fmt.Sprint(i))
		}
		if ev.Seq == 0 {
			t.Fatal("seq not stamped")
		}
		if ev.At.IsZero() {
			t.Fatal("timestamp not stamped")
		}
	}
	if _, ok := sub.TryNext(); ok {
		t.Fatal("unexpected extra event")
	}
}

func TestBusDropOldestOnSlowConsumer(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(4)
	defer sub.Close()
	for i := 0; i < 10; i++ {
		b.Publish(BusEvent{Kind: "cycle", Detail: fmt.Sprint(i)})
	}
	if got := sub.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	// The survivors are the newest four, still in order.
	for i := 6; i < 10; i++ {
		ev, ok := sub.TryNext()
		if !ok || ev.Detail != fmt.Sprint(i) {
			t.Fatalf("survivor = %+v ok=%v, want detail %d", ev, ok, i)
		}
	}
}

func TestBusSlowSubscriberDoesNotAffectOthers(t *testing.T) {
	b := NewBus()
	slow := b.Subscribe(2)
	defer slow.Close()
	fast := b.Subscribe(64)
	defer fast.Close()
	for i := 0; i < 20; i++ {
		b.Publish(BusEvent{Kind: "poll"})
	}
	if fast.Dropped() != 0 {
		t.Fatalf("fast subscriber dropped %d events", fast.Dropped())
	}
	if slow.Dropped() != 18 {
		t.Fatalf("slow subscriber dropped %d, want 18", slow.Dropped())
	}
	n := 0
	for {
		if _, ok := fast.TryNext(); !ok {
			break
		}
		n++
	}
	if n != 20 {
		t.Fatalf("fast subscriber got %d events, want 20", n)
	}
}

func TestBusNextBlocksAndWakes(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(8)
	defer sub.Close()
	got := make(chan BusEvent, 1)
	go func() {
		ev, ok := sub.Next(nil)
		if ok {
			got <- ev
		}
		close(got)
	}()
	time.Sleep(10 * time.Millisecond)
	b.Publish(BusEvent{Kind: "grant", Job: "ws0/1"})
	select {
	case ev := <-got:
		if ev.Job != "ws0/1" {
			t.Fatalf("got %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next never woke")
	}
}

func TestBusNextCancel(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(8)
	defer sub.Close()
	cancel := make(chan struct{})
	done := make(chan bool, 1)
	go func() {
		_, ok := sub.Next(cancel)
		done <- ok
	}()
	close(cancel)
	select {
	case ok := <-done:
		if ok {
			t.Fatal("cancelled Next returned ok")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next ignored cancel")
	}
}

func TestBusCloseWakesNext(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(8)
	done := make(chan bool, 1)
	go func() {
		_, ok := sub.Next(nil)
		done <- ok
	}()
	time.Sleep(5 * time.Millisecond)
	sub.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("closed Next returned ok")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next ignored Close")
	}
	if b.Subscribers() != 0 {
		t.Fatalf("subscribers = %d after close", b.Subscribers())
	}
}

func TestBusConcurrentPublishSubscribe(t *testing.T) {
	b := NewBus()
	const publishers = 8
	const perPublisher = 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Churning subscribers while publishers run: attach, read a little,
	// detach.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := b.Subscribe(32)
				for j := 0; j < 10; j++ {
					s.TryNext()
				}
				s.Close()
			}
		}()
	}
	var pubWG sync.WaitGroup
	for p := 0; p < publishers; p++ {
		pubWG.Add(1)
		go func() {
			defer pubWG.Done()
			for i := 0; i < perPublisher; i++ {
				b.Publish(BusEvent{Kind: "stress"})
			}
		}()
	}
	pubWG.Wait()
	close(stop)
	wg.Wait()
}

// BenchmarkBusPublish is the committed-baseline guard for the bus hot
// path: with no subscribers attached (the normal state of a daemon
// nobody is watching), Publish must be a single atomic load — zero
// allocations.
func BenchmarkBusPublish(b *testing.B) {
	bus := NewBus()
	ev := BusEvent{Source: "coordinator", Kind: "grant", Job: "ws0/1", Station: "ws1"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Publish(ev)
	}
}

// BenchmarkBusPublishSubscribed measures the watched path: one attached
// subscriber that never reads (worst case — every publish overwrites
// the ring).
func BenchmarkBusPublishSubscribed(b *testing.B) {
	bus := NewBus()
	sub := bus.Subscribe(256)
	defer sub.Close()
	ev := BusEvent{Source: "coordinator", Kind: "grant", Job: "ws0/1", Station: "ws1"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Publish(ev)
	}
}
