// Package telemetry is the process-wide operational metrics layer: the
// live counterpart of the paper's §3 measurements. Where internal/metrics
// holds the *offline* statistical containers that reproduce the paper's
// tables, this package holds the *online* registry every daemon reports
// into at runtime — RPC round-trip latency, coordinator cycle duration,
// shadow syscall cost — exposed in Prometheus text format over HTTP.
//
// Design constraints, in priority order:
//
//  1. The observation path is lock-free and allocation-free. A Counter or
//     Gauge is one atomic add; a Histogram.Observe is a binary search over
//     fixed bucket bounds plus two atomic adds and a CAS-loop float add.
//     No map lookup happens per observation: callers intern a metric once
//     (package-level var or Vec.With at setup time) and hold the pointer.
//  2. Registration is idempotent and panics only on programmer error
//     (same name registered as two different kinds).
//  3. Exposition takes a point-in-time snapshot without stopping writers;
//     per-series values are atomically read but the page as a whole is
//     not a consistent cut — the standard Prometheus contract.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency bucket upper bounds in seconds,
// spanning the shadow-syscall microsecond regime (§3: 0.4–40 ms per
// remote syscall) up to multi-second poll cycles and checkpoint
// transfers.
var DefBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10, 30, 60,
}

// kind is a metric family's type.
type kind int

const (
	kindCounter kind = iota + 1
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// series is one exported time series inside a family.
type series interface {
	// labels returns the rendered label set ("" or `{k="v"}`).
	labelString() string
	// write appends the series' sample lines for family name.
	write(b *strings.Builder, name string)
}

// family groups every series sharing one metric name.
type family struct {
	name string
	help string
	kind kind

	mu     sync.Mutex
	series []series
	byLbl  map[string]series
}

// add registers s under its label set, returning the existing series if
// one is already interned there (idempotent registration).
func (f *family) add(s series) series {
	f.mu.Lock()
	defer f.mu.Unlock()
	if prev, ok := f.byLbl[s.labelString()]; ok {
		return prev
	}
	f.byLbl[s.labelString()] = s
	f.series = append(f.series, s)
	return s
}

// Registry holds metric families and renders them. The zero value is not
// usable; call NewRegistry. Most code uses the package-level Default.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Default is the process-wide registry every package-level constructor
// registers into; the daemons' -http endpoint serves it.
var Default = NewRegistry()

// family returns (creating if needed) the family for name, enforcing
// kind consistency.
func (r *Registry) family(name, help string, k kind) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != k {
			panic(fmt.Sprintf("telemetry: %s registered as %s, redeclared as %s", name, f.kind, k))
		}
		return f
	}
	f := &family{name: name, help: help, kind: k, byLbl: make(map[string]series)}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// --- counter -----------------------------------------------------------

// Counter is a monotonically increasing uint64. All methods are
// lock-free and safe for concurrent use.
type Counter struct {
	lbl string
	v   atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) labelString() string { return c.lbl }

func (c *Counter) write(b *strings.Builder, name string) {
	b.WriteString(name)
	b.WriteString(c.lbl)
	fmt.Fprintf(b, " %d\n", c.v.Load())
}

// Counter registers (or returns the existing) unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, kindCounter)
	return f.add(&Counter{}).(*Counter)
}

// NewCounter registers a counter on the Default registry.
func NewCounter(name, help string) *Counter { return Default.Counter(name, help) }

// CounterVec mints label-valued counters within one family. With interns
// on first use; callers should hold the returned pointer for hot paths.
type CounterVec struct {
	fam   *family
	label string
}

// CounterVec registers a counter family labeled by label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return &CounterVec{fam: r.family(name, help, kindCounter), label: label}
}

// NewCounterVec registers a labeled counter family on Default.
func NewCounterVec(name, help, label string) *CounterVec {
	return Default.CounterVec(name, help, label)
}

// With returns the counter for one label value, creating it on first use.
func (v *CounterVec) With(value string) *Counter {
	return v.fam.add(&Counter{lbl: renderLabel(v.label, value)}).(*Counter)
}

// --- gauge -------------------------------------------------------------

// Gauge is an int64 that can go up and down.
type Gauge struct {
	lbl string
	v   atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) labelString() string { return g.lbl }

func (g *Gauge) write(b *strings.Builder, name string) {
	b.WriteString(name)
	b.WriteString(g.lbl)
	fmt.Fprintf(b, " %d\n", g.v.Load())
}

// Gauge registers (or returns the existing) unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, kindGauge)
	return f.add(&Gauge{}).(*Gauge)
}

// NewGauge registers a gauge on the Default registry.
func NewGauge(name, help string) *Gauge { return Default.Gauge(name, help) }

// GaugeVec mints label-valued gauges within one family.
type GaugeVec struct {
	fam   *family
	label string
}

// GaugeVec registers a gauge family labeled by label.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	return &GaugeVec{fam: r.family(name, help, kindGauge), label: label}
}

// NewGaugeVec registers a labeled gauge family on Default.
func NewGaugeVec(name, help, label string) *GaugeVec {
	return Default.GaugeVec(name, help, label)
}

// With returns the gauge for one label value, creating it on first use.
func (v *GaugeVec) With(value string) *Gauge {
	return v.fam.add(&Gauge{lbl: renderLabel(v.label, value)}).(*Gauge)
}

// gaugeFunc samples a float at exposition time (for values cheaper to
// compute on demand than to maintain, e.g. goroutine counts).
type gaugeFunc struct {
	lbl string
	f   func() float64
}

func (g *gaugeFunc) labelString() string { return g.lbl }

func (g *gaugeFunc) write(b *strings.Builder, name string) {
	b.WriteString(name)
	b.WriteString(g.lbl)
	b.WriteByte(' ')
	b.WriteString(formatFloat(g.f()))
	b.WriteByte('\n')
}

// GaugeFunc registers a gauge whose value is sampled at scrape time.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	r.family(name, help, kindGauge).add(&gaugeFunc{f: f})
}

// NewGaugeFunc registers a sampled gauge on the Default registry.
func NewGaugeFunc(name, help string, f func() float64) { Default.GaugeFunc(name, help, f) }

// --- histogram ---------------------------------------------------------

// Histogram accumulates observations into fixed buckets. Observe is
// lock-free: a binary search over the immutable bounds, two atomic adds,
// and a CAS loop for the float sum. It never allocates.
type Histogram struct {
	lbl    string
	bounds []float64 // ascending upper bounds; +Inf bucket is implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // math.Float64bits of the running sum
	ex     atomic.Pointer[exemplar]
}

// exemplar pins one concrete observation (typically the latest traced
// one) to a histogram so an operator can jump from an aggregate latency
// series to the span that produced it.
type exemplar struct {
	ref string // opaque reference, e.g. "trace=<id> span=<id>"
	v   float64
	at  time.Time
}

func newHistogram(lbl string, bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{
		lbl:    lbl,
		bounds: b,
		counts: make([]atomic.Uint64, len(b)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// sort.SearchFloat64s(h.bounds, v) finds the first bound >= v except
	// that equal values must land in their own bucket (le is inclusive);
	// Search returns the insertion point for v, which for v == bound is
	// the bound's own index. That is exactly the Prometheus contract.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveExemplar records v and, when ref is non-empty, stores it as the
// series' current exemplar. The exemplar store is a single atomic pointer
// swap: last writer wins, no history is kept.
func (h *Histogram) ObserveExemplar(v float64, ref string) {
	h.Observe(v)
	if ref != "" {
		h.ex.Store(&exemplar{ref: ref, v: v, at: time.Now()})
	}
}

// ObserveDurationExemplar records d in seconds with an exemplar ref.
func (h *Histogram) ObserveDurationExemplar(d time.Duration, ref string) {
	h.ObserveExemplar(d.Seconds(), ref)
}

// Exemplar returns the most recent exemplar ref and value ("" if none).
func (h *Histogram) Exemplar() (ref string, v float64) {
	if e := h.ex.Load(); e != nil {
		return e.ref, e.v
	}
	return "", 0
}

// Count returns how many observations were recorded.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

func (h *Histogram) labelString() string { return h.lbl }

func (h *Histogram) write(b *strings.Builder, name string) {
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		b.WriteString(name)
		b.WriteString("_bucket")
		b.WriteString(mergeLabels(h.lbl, `le="`+formatFloat(bound)+`"`))
		fmt.Fprintf(b, " %d\n", cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	b.WriteString(name)
	b.WriteString("_bucket")
	b.WriteString(mergeLabels(h.lbl, `le="+Inf"`))
	fmt.Fprintf(b, " %d\n", cum)
	b.WriteString(name)
	b.WriteString("_sum")
	b.WriteString(h.lbl)
	b.WriteByte(' ')
	b.WriteString(formatFloat(h.Sum()))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_count")
	b.WriteString(h.lbl)
	fmt.Fprintf(b, " %d\n", h.count.Load())
	// Exemplar as a comment line: plain-text Prometheus parsers skip
	// comments, while humans and our own tooling can jump from the
	// aggregate to one concrete traced observation.
	if e := h.ex.Load(); e != nil {
		fmt.Fprintf(b, "# exemplar %s%s %s %s\n", name, h.lbl, e.ref, formatFloat(e.v))
	}
}

// Histogram registers (or returns the existing) unlabeled histogram with
// the given bucket upper bounds (nil = DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	f := r.family(name, help, kindHistogram)
	return f.add(newHistogram("", bounds)).(*Histogram)
}

// NewHistogram registers a histogram on the Default registry.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	return Default.Histogram(name, help, bounds)
}

// HistogramVec mints label-valued histograms within one family.
type HistogramVec struct {
	fam    *family
	label  string
	bounds []float64
}

// HistogramVec registers a histogram family labeled by label.
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	if bounds == nil {
		bounds = DefBuckets
	}
	return &HistogramVec{fam: r.family(name, help, kindHistogram), label: label, bounds: bounds}
}

// NewHistogramVec registers a labeled histogram family on Default.
func NewHistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	return Default.HistogramVec(name, help, label, bounds)
}

// With returns the histogram for one label value, creating it on first
// use. Intern the result at setup time; With itself takes the family
// lock.
func (v *HistogramVec) With(value string) *Histogram {
	return v.fam.add(newHistogram(renderLabel(v.label, value), v.bounds)).(*Histogram)
}

// --- rendering helpers -------------------------------------------------

// renderLabel renders one label pair as `{name="value"}` with the value
// escaped per the Prometheus text format.
func renderLabel(name, value string) string {
	if name == "" {
		return ""
	}
	return "{" + name + `="` + escapeLabel(value) + `"}`
}

// mergeLabels merges a series' rendered label set with one extra pair
// (used for histogram le labels).
func mergeLabels(lbl, extra string) string {
	if lbl == "" {
		return "{" + extra + "}"
	}
	return lbl[:len(lbl)-1] + "," + extra + "}"
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

// helpEscaper covers the HELP-line escapes the exposition format
// defines: backslash and newline (quotes are legal in HELP text).
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(v string) string { return helpEscaper.Replace(v) }

// formatFloat renders a float the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strings.TrimSuffix(fmt.Sprintf("%g", v), ".0")
	}
}

// WriteText renders the registry in Prometheus text exposition format.
func (r *Registry) WriteText(b *strings.Builder) {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		f.mu.Lock()
		ss := append([]series(nil), f.series...)
		f.mu.Unlock()
		if len(ss) == 0 {
			continue
		}
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range ss {
			s.write(b, f.name)
		}
	}
}

// Text returns the full exposition page.
func (r *Registry) Text() string {
	var b strings.Builder
	r.WriteText(&b)
	return b.String()
}
