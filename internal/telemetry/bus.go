package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// The event bus is the streaming counterpart of the /metrics page:
// where metrics answer "how much, how fast", the bus answers "what just
// happened". Daemons publish discrete occurrences — a grant issued, a
// station quarantined, a poll cycle completed — and any number of
// consumers (the condor-web dashboard's SSE fan-out, tests, future
// federation reporting) subscribe without ever being able to slow a
// publisher down.
//
// Design constraints, in priority order:
//
//  1. Publish never blocks and never allocates on the no-subscriber
//     path: one atomic load decides the common case (nobody watching),
//     so the coordinator's cycle loop and the schedd's job transitions
//     can publish unconditionally. BenchmarkBusPublish gates this.
//  2. A slow consumer loses its own oldest events, nobody else's: each
//     subscriber owns a fixed-size ring; when it overflows, the oldest
//     event is overwritten and a per-subscriber drop counter ticks.
//     Publishers never wait, and one wedged browser tab cannot wedge
//     the pool.
//  3. Subscribers see events in publish order with a monotonically
//     increasing sequence number, so a consumer can detect (and report)
//     its own gaps.

// BusEvent is one occurrence on the bus. It is a plain value — strings
// are references, so copying an event into subscriber rings does not
// allocate.
type BusEvent struct {
	// Seq is the bus-assigned publish sequence number (1-based,
	// monotonic). Gaps in a subscriber's view mean that subscriber
	// dropped events.
	Seq uint64 `json:"seq"`
	// At is when the event was published (stamped if zero).
	At time.Time `json:"at"`
	// Source identifies the emitting daemon: "coordinator",
	// "station/ws0", "web".
	Source string `json:"source,omitempty"`
	// Kind classifies the event; eventlog kinds (grant, quarantine,
	// place, ...) plus bus-only kinds ("cycle", "alert-firing",
	// "alert-resolved").
	Kind string `json:"kind"`
	// Job and Station scope the event, when applicable.
	Job     string `json:"job,omitempty"`
	Station string `json:"station,omitempty"`
	// Detail is the human-readable specifics.
	Detail string `json:"detail,omitempty"`
	// TraceID stitches the event to its distributed trace, if any.
	TraceID string `json:"traceID,omitempty"`
}

// Bus telemetry: publishes and subscriber-side drops, so an operator
// can see from /metrics alone that a dashboard is falling behind.
var (
	mBusPublished = NewCounter("condor_bus_events_published_total",
		"Events published onto the telemetry event bus (counted only while at least one subscriber is attached).")
	mBusDropped = NewCounter("condor_bus_events_dropped_total",
		"Events dropped ring-side because a subscriber was slower than the publishers.")
	mBusSubscribers = NewGauge("condor_bus_subscribers",
		"Subscribers currently attached to the telemetry event bus.")
)

// Bus is a bounded broadcast channel. The zero value is not usable;
// call NewBus. Most code uses the package-level Events bus.
type Bus struct {
	// nsubs is the subscriber count, read first on every publish so the
	// no-subscriber path is one atomic load.
	nsubs atomic.Int32
	seq   atomic.Uint64

	mu   sync.RWMutex
	subs []*Subscriber
}

// NewBus creates an empty bus.
func NewBus() *Bus { return &Bus{} }

// Events is the process-wide bus every daemon publishes onto; the
// daemons' -http listeners stream it at /events.
var Events = NewBus()

// DefaultSubscriberCapacity is the ring size Subscribe uses for cap<=0.
const DefaultSubscriberCapacity = 256

// Publish broadcasts ev to every subscriber. It never blocks: a full
// subscriber ring loses its oldest event instead. With no subscribers
// attached, Publish is a single atomic load and returns immediately
// without allocating.
func (b *Bus) Publish(ev BusEvent) {
	if b.nsubs.Load() == 0 {
		return
	}
	ev.Seq = b.seq.Add(1)
	if ev.At.IsZero() {
		ev.At = time.Now()
	}
	mBusPublished.Inc()
	b.mu.RLock()
	for _, s := range b.subs {
		s.push(ev)
	}
	b.mu.RUnlock()
}

// Subscribe attaches a new subscriber whose ring holds capacity events
// (<=0 selects DefaultSubscriberCapacity). The caller must Close it.
func (b *Bus) Subscribe(capacity int) *Subscriber {
	if capacity <= 0 {
		capacity = DefaultSubscriberCapacity
	}
	s := &Subscriber{
		bus:    b,
		ring:   make([]BusEvent, capacity),
		notify: make(chan struct{}, 1),
	}
	b.mu.Lock()
	b.subs = append(b.subs, s)
	b.mu.Unlock()
	b.nsubs.Add(1)
	mBusSubscribers.Set(int64(b.nsubs.Load()))
	return s
}

// Subscribers reports how many subscribers are attached.
func (b *Bus) Subscribers() int { return int(b.nsubs.Load()) }

// Subscriber is one consumer's bounded view of the bus. All methods are
// safe for concurrent use, but events are handed out in order to one
// reader at a time.
type Subscriber struct {
	bus *Bus

	mu      sync.Mutex
	ring    []BusEvent
	head    int // index of the oldest buffered event
	n       int // buffered event count
	dropped uint64
	closed  bool

	// notify wakes a blocked Next; capacity 1 so push never blocks.
	notify chan struct{}
}

// push appends ev, overwriting the oldest event when the ring is full.
// Called by the bus with its read lock held; never blocks.
func (s *Subscriber) push(ev BusEvent) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.n == len(s.ring) {
		// Drop-oldest: the publisher's latency is not negotiable.
		s.ring[s.head] = ev
		s.head = (s.head + 1) % len(s.ring)
		s.dropped++
		mBusDropped.Inc()
	} else {
		s.ring[(s.head+s.n)%len(s.ring)] = ev
		s.n++
	}
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// TryNext returns the oldest buffered event, or ok=false when the ring
// is empty (or the subscriber closed).
func (s *Subscriber) TryNext() (BusEvent, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return BusEvent{}, false
	}
	ev := s.ring[s.head]
	s.ring[s.head] = BusEvent{} // release string refs
	s.head = (s.head + 1) % len(s.ring)
	s.n--
	return ev, true
}

// Next blocks until an event is available, the subscriber is closed, or
// cancel is closed (nil cancel never fires). ok=false means closed or
// cancelled.
func (s *Subscriber) Next(cancel <-chan struct{}) (BusEvent, bool) {
	for {
		if ev, ok := s.TryNext(); ok {
			return ev, true
		}
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return BusEvent{}, false
		}
		select {
		case <-s.notify:
		case <-cancel:
			return BusEvent{}, false
		}
	}
}

// Dropped reports how many events this subscriber lost to ring
// overflow.
func (s *Subscriber) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Close detaches the subscriber from the bus and wakes any blocked
// Next. Safe to call multiple times.
func (s *Subscriber) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()

	b := s.bus
	b.mu.Lock()
	for i, sub := range b.subs {
		if sub == s {
			b.subs = append(b.subs[:i], b.subs[i+1:]...)
			break
		}
	}
	b.mu.Unlock()
	b.nsubs.Add(-1)
	mBusSubscribers.Set(int64(b.nsubs.Load()))
	select {
	case s.notify <- struct{}{}:
	default:
	}
}
