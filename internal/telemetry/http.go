package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"sync"
	"time"
)

// extraHandlers are endpoints other packages register at init time (e.g.
// internal/trace mounts /traces) so every daemon's -http listener picks
// them up without telemetry importing those packages.
var (
	extraMu       sync.Mutex
	extraHandlers = map[string]http.Handler{}
)

// Handle registers an additional handler mounted on every subsequently
// started Serve listener. Registration is typically done from an init
// function; re-registering a pattern replaces the previous handler.
func Handle(pattern string, h http.Handler) {
	extraMu.Lock()
	defer extraMu.Unlock()
	extraHandlers[pattern] = h
}

// Readiness checks turn /healthz from a liveness ping into a readiness
// probe: a daemon registers a check describing a condition under which
// it must stop looking healthy (the coordinator registers "poll cycles
// are still running and the journal is writable"), and any failing check
// makes every Serve listener answer 503. Deregistration on daemon close
// keeps the registry scoped to live components.
var (
	readyMu     sync.Mutex
	readyChecks = map[string]func() error{}
)

// RegisterReadiness installs a named readiness check evaluated on every
// /healthz request. check returns nil when ready, an error describing
// why not otherwise. Re-registering a name replaces the check.
func RegisterReadiness(name string, check func() error) {
	readyMu.Lock()
	defer readyMu.Unlock()
	readyChecks[name] = check
}

// UnregisterReadiness removes a named check (a closed daemon must not
// keep the process unready).
func UnregisterReadiness(name string) {
	readyMu.Lock()
	defer readyMu.Unlock()
	delete(readyChecks, name)
}

// ReadinessFailures evaluates every registered readiness check and
// returns "name: error" lines, sorted for deterministic output (empty
// when all ready). /healthz serves these in its 503 body; the
// coordinator also ships them in CoordinatorInfo so condor-status and
// the dashboard can show *why* a daemon is unready without a second
// scrape.
func ReadinessFailures() []string { return readinessFailures() }

// readinessFailures evaluates all checks and returns "name: error"
// lines, sorted for deterministic output (empty when all ready).
func readinessFailures() []string {
	readyMu.Lock()
	names := make([]string, 0, len(readyChecks))
	checks := make([]func() error, 0, len(readyChecks))
	for name, check := range readyChecks {
		names = append(names, name)
		checks = append(checks, check)
	}
	readyMu.Unlock()
	var failures []string
	for i, check := range checks {
		if err := check(); err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", names[i], err))
		}
	}
	sort.Strings(failures)
	return failures
}

// Handler returns an http.Handler serving the registry's exposition page
// (mount it at /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, r.Text())
	})
}

// Server is the daemons' operational side listener: /metrics in
// Prometheus text format, /healthz, and the net/http/pprof surface under
// /debug/pprof/. It rides a separate listener from the wire protocol so
// scraping and profiling never contend with RPC traffic.
type Server struct {
	ln      net.Listener
	srv     *http.Server
	started time.Time
}

// Serve starts the operational HTTP listener on addr (e.g.
// "127.0.0.1:9100"; port 0 picks a free one). reg is usually Default.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, started: time.Now()}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	// The live event stream (see bus.go / sse.go): every daemon with an
	// operational listener also streams its bus at /events.
	mux.Handle("/events", SSEHandler(Events, 0))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if failures := readinessFailures(); len(failures) > 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, "not ready\n")
			for _, f := range failures {
				fmt.Fprintln(w, f)
			}
			return
		}
		fmt.Fprintf(w, "ok\nuptime %s\ngoroutines %d\n",
			time.Since(s.started).Round(time.Second), runtime.NumGoroutine())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	extraMu.Lock()
	for pattern, h := range extraHandlers {
		mux.Handle(pattern, h)
	}
	extraMu.Unlock()
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener.
func (s *Server) Close() error { return s.srv.Close() }
