package schedd

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"condor/internal/accounting"
	"condor/internal/ckpt"
	"condor/internal/cvm"
	"condor/internal/eventlog"
	"condor/internal/machine"
	"condor/internal/proto"
	"condor/internal/ru"
	"condor/internal/telemetry"
	"condor/internal/trace"
	"condor/internal/wire"
)

// Station-level errors.
var (
	// ErrQueueClosed is returned for operations on a closed station.
	ErrQueueClosed = errors.New("schedd: station closed")
	// ErrNoSuchJob is returned when a job id is unknown.
	ErrNoSuchJob = errors.New("schedd: no such job")
	// ErrDiskFull wraps ckpt.ErrDiskFull for submissions that do not fit.
	ErrDiskFull = ckpt.ErrDiskFull
)

// HostFactory builds the syscall handler (the "files of the submitting
// machine") for one job. The default gives every job a private in-memory
// filesystem.
type HostFactory func(jobID, owner string) cvm.SyscallHandler

// StdoutReader is implemented by hosts that can report what the job
// printed (cvm.MemHost does); the station surfaces it in JobStatus.
type StdoutReader interface {
	Stdout() string
}

// Config parameterizes a station.
type Config struct {
	// Name is the workstation name (must be unique in the pool).
	Name string
	// ListenAddr is the bind address (default "127.0.0.1:0").
	ListenAddr string
	// AdvertiseAddr, when set, is the address the station registers with
	// the coordinator instead of its listen address — for deployments
	// (and chaos harnesses) where inbound traffic arrives through a
	// proxy or NAT rather than directly at the listener.
	AdvertiseAddr string
	// Monitor reports the owner's activity; required.
	Monitor machine.Monitor
	// Store is the checkpoint store (default: unlimited in-memory with
	// shared text segments, as §4 recommends).
	Store ckpt.Store
	// Hosts builds per-job syscall handlers (default: private MemHost).
	Hosts HostFactory
	// Starter configures the execution side. Name and Monitor are filled
	// in from the station.
	Starter ru.StarterConfig
	// PlacementPacing is the minimum gap between two placements from
	// this station (paper: one per 2 minutes, §4).
	PlacementPacing time.Duration
	// DialTimeout bounds outbound connections.
	DialTimeout time.Duration
	// PlacementHeartbeat probes execution machines hosting this
	// station's jobs (default 15s; negative disables).
	PlacementHeartbeat time.Duration
	// WaitTimeout bounds a WaitRequest (default 10 minutes).
	WaitTimeout time.Duration
}

func (c *Config) sanitize() error {
	if c.Name == "" {
		return errors.New("schedd: station needs a name")
	}
	if c.Monitor == nil {
		return fmt.Errorf("schedd: station %q needs a monitor", c.Name)
	}
	if c.ListenAddr == "" {
		c.ListenAddr = "127.0.0.1:0"
	}
	if c.Store == nil {
		c.Store = ckpt.NewMemStore(0, true)
	}
	if c.Hosts == nil {
		c.Hosts = func(jobID, owner string) cvm.SyscallHandler { return cvm.NewMemHost() }
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.PlacementHeartbeat == 0 {
		c.PlacementHeartbeat = 15 * time.Second
	}
	if c.PlacementHeartbeat < 0 {
		c.PlacementHeartbeat = 0
	}
	if c.WaitTimeout <= 0 {
		c.WaitTimeout = 10 * time.Minute
	}
	return nil
}

// job is one queue entry.
type job struct {
	status     proto.JobStatus
	program    *cvm.Program
	stackWords int
	host       cvm.SyscallHandler
	shadow     *ru.Shadow
	// meter is the job's accounting meter (interned in accounting.Default
	// at submit/recover time; retired when the job reaches a terminal
	// state).
	meter *accounting.Meter
	// seq is the checkpoint sequence counter.
	seq uint64
	// traceCtx is the job's trace anchor: the submit span's context (or
	// the recover span's after a restart). Every later span of this job
	// — place, exec, syscalls, vacate, complete — descends from it, and
	// its trace ID stitches eventlog entries to /traces.
	traceCtx trace.SpanContext
}

// frameIOTimeout bounds each in-progress frame on the station's
// connections (server side and pooled client side). It only limits a
// frame's transfer time, never idleness between frames, so it can be
// generous: its job is to unwedge connections to machines that died
// mid-frame.
const frameIOTimeout = time.Minute

// Station is the per-workstation daemon.
type Station struct {
	cfg     Config
	server  *wire.Server
	starter *ru.Starter
	tracker *machine.Tracker
	events  *eventlog.Log
	// pool caches the station's outbound control connections (to the
	// coordinator), so the registrar does not dial fresh on every
	// re-registration check.
	pool *wire.ClientPool

	// gQueue / gWaiting are this station's interned queue-depth gauges.
	gQueue   *telemetry.Gauge
	gWaiting *telemetry.Gauge

	mu            sync.Mutex
	jobs          map[string]*job
	order         []string // submission order (local FIFO priority)
	nextNum       int
	lastPlacement time.Time
	lastPolled    time.Time
	closed        bool

	waiters map[string][]chan proto.JobStatus

	stop chan struct{}
	done chan struct{}
}

// New creates and starts a station: its wire server, its starter (so the
// machine can host foreign jobs), and its availability tracker.
func New(cfg Config) (*Station, error) {
	if err := cfg.sanitize(); err != nil {
		return nil, err
	}
	st := &Station{
		cfg:      cfg,
		jobs:     make(map[string]*job),
		waiters:  make(map[string][]chan proto.JobStatus),
		events:   eventlog.New(eventlog.DefaultCapacity),
		gQueue:   mQueueDepth.With(cfg.Name),
		gWaiting: mWaitingJobs.With(cfg.Name),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	// The station's job-lifecycle trail (submit, place, vacate,
	// complete, ...) also rides the process event bus for the
	// dashboard's SSE fan-out; free while nobody subscribes.
	st.events.SetNotify(func(e eventlog.Event) {
		telemetry.Events.Publish(telemetry.BusEvent{
			At: e.At, Source: "station/" + cfg.Name, Kind: string(e.Kind),
			Job: e.Job, Station: e.Station, Detail: e.Detail, TraceID: e.TraceID,
		})
	})
	starterCfg := cfg.Starter
	starterCfg.Name = cfg.Name
	starterCfg.Monitor = cfg.Monitor
	starter, err := ru.NewStarter(starterCfg)
	if err != nil {
		return nil, err
	}
	st.starter = starter
	st.pool = wire.NewClientPool(wire.PoolConfig{
		DialTimeout:  cfg.DialTimeout,
		RPCTimeout:   cfg.DialTimeout + 5*time.Second,
		WriteTimeout: frameIOTimeout,
		FrameTimeout: frameIOTimeout,
	})
	server, err := wire.NewServerOpts(cfg.ListenAddr, wire.ServerOptions{
		WriteTimeout: frameIOTimeout,
		FrameTimeout: frameIOTimeout,
	}, st.handlerFor)
	if err != nil {
		starter.Close()
		st.pool.Close()
		return nil, err
	}
	st.server = server
	st.tracker = machine.NewTracker(realClock{})
	st.recoverJobs()
	go st.trackLoop()
	return st, nil
}

// recoverJobs rebuilds the queue from checkpoints found in the store —
// the submitter-reboot half of the completion guarantee: with a durable
// store (ckpt.DirStore), a machine crash on the *submitting* side loses
// no queued or checkpointed work either. The original submission time
// and priority ride in the checkpoint metadata, so the recovered queue
// keeps its pre-restart order (submission order, not the store's
// lexicographic listing, which would rank "ws/10" before "ws/2").
func (st *Station) recoverJobs() {
	prefix := st.cfg.Name + "/"
	maxNum := 0
	type recovered struct {
		meta ckpt.Meta
		num  int
	}
	var found []recovered
	for _, meta := range st.cfg.Store.List() {
		if !strings.HasPrefix(meta.JobID, prefix) {
			continue // a foreign job's checkpoint; not ours to queue
		}
		num := 0
		if n, err := strconv.Atoi(meta.JobID[len(prefix):]); err == nil {
			num = n
			if n > maxNum {
				maxNum = n
			}
		}
		found = append(found, recovered{meta: meta, num: num})
	}
	// Submission order: the numeric job counter is assigned at submit
	// time and never reused, so it is the exact original order; the
	// persisted timestamp is restored alongside for display and any
	// age-based policy.
	sort.Slice(found, func(i, j int) bool { return found[i].num < found[j].num })
	for _, r := range found {
		meta := r.meta
		submittedAt := time.Now()
		if meta.SubmittedAtUnixMilli != 0 {
			submittedAt = time.UnixMilli(meta.SubmittedAtUnixMilli)
		}
		recoveredAt := time.Now()
		j := &job{
			status: proto.JobStatus{
				ID:           meta.JobID,
				Owner:        meta.Owner,
				Program:      meta.ProgramName,
				State:        proto.JobIdle,
				SubmittedAt:  submittedAt,
				CPUSteps:     meta.CPUSteps,
				Checkpoints:  int(meta.Sequence),
				Priority:     meta.Priority,
				WaitingSince: recoveredAt,
			},
			host:  st.cfg.Hosts(meta.JobID, meta.Owner),
			meter: accounting.Default.Job(meta.JobID, meta.Owner, st.cfg.Name),
		}
		// The recovered checkpoint already carries executed steps; a new
		// idle episode starts now (the pre-crash wait was lost with the
		// process, so it is not charged).
		j.meter.ObserveSteps(meta.CPUSteps)
		j.meter.StartWaiting(recoveredAt)
		// Resume the job's trace from the checkpoint metadata and record
		// a "recover" anchor span post-restart spans hang off, so one
		// trace spans the schedd crash.
		if sc, ok := trace.Resume(meta.TraceID); ok {
			j.traceCtx = sc
			now := time.Now()
			trace.Record(trace.Span{
				TraceID: sc.TraceID,
				SpanID:  sc.SpanID,
				Name:    "recover",
				Job:     meta.JobID,
				Station: st.cfg.Name,
				Start:   now,
				End:     now,
				Attrs: []trace.Attr{
					{Key: "seq", Value: strconv.FormatUint(meta.Sequence, 10)},
				},
			})
		}
		st.jobs[meta.JobID] = j
		st.order = append(st.order, meta.JobID)
		st.logEvent(eventlog.KindSubmit, meta.JobID, st.cfg.Name,
			fmt.Sprintf("recovered from checkpoint (seq %d)", meta.Sequence))
	}
	for range found {
		markTransition(proto.JobIdle)
	}
	st.updateQueueGaugesLocked()
	if st.nextNum < maxNum {
		st.nextNum = maxNum
	}
}

type realClock struct{}

// Now implements sim.Clock.
func (realClock) Now() time.Time { return time.Now() }

// Name returns the station name.
func (st *Station) Name() string { return st.cfg.Name }

// Addr returns the station's listen address.
func (st *Station) Addr() string { return st.server.Addr() }

// Starter exposes the execution side (for pool wiring and tests).
func (st *Station) Starter() *ru.Starter { return st.starter }

// Store exposes the checkpoint store (for disk accounting and tools).
func (st *Station) Store() ckpt.Store { return st.cfg.Store }

// Events exposes the station's event history.
func (st *Station) Events() *eventlog.Log { return st.events }

func (st *Station) logEvent(kind eventlog.Kind, jobID, station, detail string) {
	st.events.Append(eventlog.Event{
		Kind: kind, Job: jobID, Station: station, Detail: detail,
		TraceID: st.traceIDOf(jobID),
	})
}

// traceCtxOf returns the job's trace anchor (zero when unknown/untraced).
func (st *Station) traceCtxOf(jobID string) trace.SpanContext {
	st.mu.Lock()
	defer st.mu.Unlock()
	if j, ok := st.jobs[jobID]; ok {
		return j.traceCtx
	}
	return trace.SpanContext{}
}

// traceIDOf returns the job's trace ID in hex, or "" when untraced.
func (st *Station) traceIDOf(jobID string) string {
	sc := st.traceCtxOf(jobID)
	if !sc.Valid() {
		return ""
	}
	return sc.TraceID.String()
}

// Close shuts the station down.
func (st *Station) Close() {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	st.closed = true
	shadows := make([]*ru.Shadow, 0, len(st.jobs))
	for _, j := range st.jobs {
		if j.shadow != nil {
			shadows = append(shadows, j.shadow)
		}
	}
	st.mu.Unlock()
	close(st.stop)
	<-st.done
	for _, sh := range shadows {
		sh.Close()
	}
	st.server.Close()
	st.starter.Close()
	st.pool.Close()
}

// trackLoop feeds the availability tracker, mirroring the local
// scheduler's ½-minute scan.
func (st *Station) trackLoop() {
	defer close(st.done)
	interval := st.cfg.Starter.ScanInterval
	if interval <= 0 {
		interval = 30 * time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-st.stop:
			return
		case <-ticker.C:
			st.tracker.Observe(!st.cfg.Monitor.OwnerActive())
		}
	}
}

// SubmitOptions tunes one submission.
type SubmitOptions struct {
	// StackWords overrides the VM's default stack size (0 = default).
	StackWords int
	// Priority orders the job in the local queue: higher runs first,
	// ties break FIFO. The coordinator never sees priorities — which job
	// a grant runs is the station's own decision (§2.1).
	Priority int
}

// Submit queues a program for background execution and returns the job
// id. It fails with ErrDiskFull when the checkpoint store cannot hold the
// job's initial image (§4's disk-space limit on simultaneous jobs).
func (st *Station) Submit(owner string, prog *cvm.Program, stackWords int) (string, error) {
	return st.SubmitJob(owner, prog, SubmitOptions{StackWords: stackWords})
}

// SubmitJob is Submit with full options.
func (st *Station) SubmitJob(owner string, prog *cvm.Program, opts SubmitOptions) (string, error) {
	if prog == nil {
		return "", errors.New("schedd: nil program")
	}
	if err := prog.Validate(); err != nil {
		return "", err
	}
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return "", ErrQueueClosed
	}
	st.nextNum++
	jobID := fmt.Sprintf("%s/%d", st.cfg.Name, st.nextNum)
	st.mu.Unlock()

	// The submit span is the root of the job's entire distributed trace;
	// its ID rides the checkpoint metadata so the trace keeps following
	// the job across migrations and restarts.
	span := trace.StartRoot("submit")
	span.SetJob(jobID)
	span.SetStation(st.cfg.Name)
	traceCtx := span.Context()

	submittedAt := time.Now()
	meta := ckpt.Meta{
		JobID: jobID, Owner: owner, ProgramName: prog.Name,
		SubmittedAtUnixMilli: submittedAt.UnixMilli(),
		Priority:             opts.Priority,
		TraceID:              traceCtx.TraceID.String(),
	}
	blob, err := ru.InitialCheckpoint(meta, prog, opts.StackWords)
	if err != nil {
		span.SetError(err)
		span.Finish()
		return "", err
	}
	_, img, err := ckpt.DecodeBytes(blob)
	if err != nil {
		span.SetError(err)
		span.Finish()
		return "", err
	}
	if err := st.cfg.Store.Put(meta, img); err != nil {
		span.SetError(err)
		span.Finish()
		return "", fmt.Errorf("schedd: submit %s: %w", jobID, err)
	}

	j := &job{
		status: proto.JobStatus{
			ID:           jobID,
			Owner:        owner,
			Program:      prog.Name,
			State:        proto.JobIdle,
			SubmittedAt:  submittedAt,
			Priority:     opts.Priority,
			WaitingSince: submittedAt,
		},
		program:    prog,
		stackWords: opts.StackWords,
		host:       st.cfg.Hosts(jobID, owner),
		traceCtx:   traceCtx,
		meter:      accounting.Default.Job(jobID, owner, st.cfg.Name),
	}
	j.meter.StartWaiting(submittedAt)
	st.mu.Lock()
	st.jobs[jobID] = j
	st.order = append(st.order, jobID)
	st.updateQueueGaugesLocked()
	st.mu.Unlock()
	markTransition(proto.JobIdle)
	span.Finish()
	st.logEvent(eventlog.KindSubmit, jobID, st.cfg.Name,
		fmt.Sprintf("%s by %s (pri %d)", prog.Name, owner, opts.Priority))
	return jobID, nil
}

// Job returns a job's status.
func (st *Station) Job(jobID string) (proto.JobStatus, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[jobID]
	if !ok {
		return proto.JobStatus{}, fmt.Errorf("%w: %s", ErrNoSuchJob, jobID)
	}
	return st.statusLocked(j), nil
}

func (st *Station) statusLocked(j *job) proto.JobStatus {
	status := j.status
	if r, ok := j.host.(StdoutReader); ok {
		status.Stdout = r.Stdout()
	}
	return status
}

// Queue returns all jobs sorted by submission order.
func (st *Station) Queue() []proto.JobStatus {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]proto.JobStatus, 0, len(st.order))
	for _, id := range st.order {
		if j, ok := st.jobs[id]; ok {
			out = append(out, st.statusLocked(j))
		}
	}
	return out
}

// WaitingJobs counts jobs wanting remote capacity.
func (st *Station) WaitingJobs() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, j := range st.jobs {
		if j.status.State == proto.JobIdle {
			n++
		}
	}
	return n
}

// Remove deletes a job; a running job's shadow connection is torn down,
// which vacates the execution machine.
func (st *Station) Remove(jobID string) bool {
	st.mu.Lock()
	j, ok := st.jobs[jobID]
	if !ok {
		st.mu.Unlock()
		return false
	}
	shadow := j.shadow
	j.shadow = nil
	wasTerminal := j.status.State.Terminal()
	if !wasTerminal {
		j.status.State = proto.JobRemoved
		markTransition(proto.JobRemoved)
	}
	status := st.statusLocked(j)
	st.updateQueueGaugesLocked()
	st.mu.Unlock()
	if shadow != nil {
		shadow.Close()
	}
	_ = st.cfg.Store.Delete(jobID)
	if !wasTerminal {
		accounting.Default.Retire(jobID)
		st.logEvent(eventlog.KindRemove, jobID, st.cfg.Name, "")
		st.notifyWaiters(jobID, status)
	}
	return true
}

// Wait blocks until the job reaches a terminal state or the timeout.
func (st *Station) Wait(jobID string, timeout time.Duration) (proto.JobStatus, error) {
	st.mu.Lock()
	j, ok := st.jobs[jobID]
	if !ok {
		st.mu.Unlock()
		return proto.JobStatus{}, fmt.Errorf("%w: %s", ErrNoSuchJob, jobID)
	}
	if j.status.State.Terminal() {
		status := st.statusLocked(j)
		st.mu.Unlock()
		return status, nil
	}
	ch := make(chan proto.JobStatus, 1)
	st.waiters[jobID] = append(st.waiters[jobID], ch)
	st.mu.Unlock()
	select {
	case status := <-ch:
		return status, nil
	case <-time.After(timeout):
		return st.Job(jobID)
	case <-st.stop:
		return proto.JobStatus{}, ErrQueueClosed
	}
}

func (st *Station) notifyWaiters(jobID string, status proto.JobStatus) {
	st.mu.Lock()
	chans := st.waiters[jobID]
	delete(st.waiters, jobID)
	st.mu.Unlock()
	for _, ch := range chans {
		ch <- status
	}
}

// State reports the station's scheduling state for coordinator polls.
func (st *Station) State() proto.StationState {
	if _, _, ok := st.starter.Running(); ok {
		if st.starter.Suspended() {
			return proto.StationSuspended
		}
		return proto.StationClaimed
	}
	if st.cfg.Monitor.OwnerActive() {
		return proto.StationOwner
	}
	return proto.StationIdle
}

// diskFree reports remaining checkpoint-store space (MaxInt64 when
// unlimited).
func (st *Station) diskFree() int64 {
	capacity := st.cfg.Store.Capacity()
	if capacity <= 0 {
		return int64(1) << 62
	}
	free := capacity - st.cfg.Store.Usage().Bytes
	if free < 0 {
		free = 0
	}
	return free
}

// nextIdleJobLocked picks the station's next job to place: highest
// priority first, FIFO within a priority level (the local scheduler's
// own policy, §2.1).
func (st *Station) nextIdleJobLocked() (*job, bool) {
	var best *job
	for _, id := range st.order {
		j, ok := st.jobs[id]
		if !ok || j.status.State != proto.JobIdle {
			continue
		}
		if best == nil || j.status.Priority > best.status.Priority {
			best = j
		}
	}
	return best, best != nil
}

// PlaceNext places the station's next idle job on the execution machine
// at execAddr. It is called when the coordinator grants capacity.
func (st *Station) PlaceNext(execName, execAddr string) (string, error) {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return "", ErrQueueClosed
	}
	if st.cfg.PlacementPacing > 0 && time.Since(st.lastPlacement) < st.cfg.PlacementPacing {
		st.mu.Unlock()
		return "", fmt.Errorf("schedd: placement pacing (next allowed in %v)",
			st.cfg.PlacementPacing-time.Since(st.lastPlacement))
	}
	j, ok := st.nextIdleJobLocked()
	if !ok {
		st.mu.Unlock()
		return "", errors.New("schedd: no idle jobs")
	}
	jobID := j.status.ID
	owner := j.status.Owner
	host := j.host
	jobTrace := j.traceCtx
	j.status.State = proto.JobPlacing
	st.updateQueueGaugesLocked()
	st.mu.Unlock()
	markTransition(proto.JobPlacing)

	// The place span covers checkpoint read + handshake; the starter's
	// exec span hangs off it via the wire's trace context.
	span := trace.StartChildIfSampled(jobTrace, "place")
	span.SetJob(jobID)
	span.SetStation(execName)

	meta, img, err := st.cfg.Store.Get(jobID)
	if err != nil {
		span.SetError(err)
		span.Finish()
		st.setJobState(jobID, proto.JobIdle)
		return "", fmt.Errorf("schedd: checkpoint for %s: %w", jobID, err)
	}
	blob, err := ckpt.EncodeBytesWith(meta, img, ckpt.Options{Compress: true})
	if err != nil {
		span.SetError(err)
		span.Finish()
		st.setJobState(jobID, proto.JobIdle)
		return "", err
	}
	placeCtx := context.Background()
	if span.Recording() {
		placeCtx = trace.ContextWith(placeCtx, span.Context())
	}
	shadow, err := ru.Place(placeCtx, execAddr, proto.PlaceRequest{
		JobID:      jobID,
		Owner:      owner,
		HomeHost:   st.cfg.Name,
		Checkpoint: blob,
	}, host, &jobEvents{station: st, jobID: jobID}, ru.PlaceConfig{
		DialTimeout: st.cfg.DialTimeout,
		// Retry only the TCP connect under the default policy; the
		// handshake itself runs at most once (see ru.PlaceConfig).
		DialRetry:    &wire.Retry{},
		WriteTimeout: frameIOTimeout,
		FrameTimeout: frameIOTimeout,
		Heartbeat:    st.cfg.PlacementHeartbeat,
	})
	if err != nil {
		span.SetError(err)
		span.Finish()
		st.setJobState(jobID, proto.JobIdle)
		return "", err
	}
	span.Finish()

	placedAt := time.Now()
	st.mu.Lock()
	j.shadow = shadow
	j.status.State = proto.JobRunning
	j.status.ExecHost = execName
	j.status.Placements++
	j.status.WaitingSince = time.Time{}
	st.lastPlacement = placedAt
	st.updateQueueGaugesLocked()
	st.mu.Unlock()
	j.meter.Placed(placedAt)
	markTransition(proto.JobRunning)
	st.logEvent(eventlog.KindPlace, jobID, execName, "")
	return jobID, nil
}

func (st *Station) setJobState(jobID string, state proto.JobState) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if j, ok := st.jobs[jobID]; ok {
		j.status.State = state
		markTransition(state)
		st.updateQueueGaugesLocked()
	}
}
