package schedd

import (
	"fmt"
	"time"

	"condor/internal/accounting"
	"condor/internal/ckpt"
	"condor/internal/eventlog"
	"condor/internal/proto"
	"condor/internal/ru"
)

// jobEvents routes one job's shadow events back into the station.
type jobEvents struct {
	station *Station
	jobID   string
}

var _ ru.Events = (*jobEvents)(nil)

// JobDone implements ru.Events.
func (e *jobEvents) JobDone(msg proto.JobDoneMsg) {
	st := e.station
	st.mu.Lock()
	j, ok := st.jobs[e.jobID]
	if !ok {
		st.mu.Unlock()
		return
	}
	j.shadow = nil
	j.status.CPUSteps = msg.Steps
	if msg.Faulted {
		j.status.State = proto.JobFaulted
		j.status.FaultMsg = msg.FaultMsg
		markTransition(proto.JobFaulted)
	} else {
		j.status.State = proto.JobCompleted
		j.status.ExitCode = msg.ExitCode
		markTransition(proto.JobCompleted)
	}
	meter := j.meter
	status := st.statusLocked(j)
	st.updateQueueGaugesLocked()
	st.mu.Unlock()
	if meter != nil {
		meter.ObserveSteps(msg.Steps)
	}
	// Terminal: fold the job's accounting into its station/user totals.
	accounting.Default.Retire(e.jobID)
	// The checkpoint is no longer needed; release the disk (§4).
	_ = st.cfg.Store.Delete(e.jobID)
	if msg.Faulted {
		st.logEvent(eventlog.KindFault, e.jobID, status.ExecHost, msg.FaultMsg)
	} else {
		st.logEvent(eventlog.KindComplete, e.jobID, status.ExecHost,
			fmt.Sprintf("exit %d after %d steps", msg.ExitCode, msg.Steps))
	}
	st.notifyWaiters(e.jobID, status)
}

// JobVacated implements ru.Events: store the checkpoint and requeue.
func (e *jobEvents) JobVacated(msg proto.JobVacatedMsg) {
	e.storeCheckpoint(msg.Checkpoint)
	st := e.station
	now := time.Now()
	st.mu.Lock()
	if j, ok := st.jobs[e.jobID]; ok {
		j.shadow = nil
		j.status.State = proto.JobIdle
		j.status.ExecHost = ""
		j.status.CPUSteps = msg.Steps
		j.status.Checkpoints++
		j.status.WaitingSince = now
		markTransition(proto.JobIdle)
		st.updateQueueGaugesLocked()
		if j.meter != nil {
			j.meter.ObserveSteps(msg.Steps)
			j.meter.StartWaiting(now) // requeued: a new idle episode begins
		}
	}
	st.mu.Unlock()
	st.logEvent(eventlog.KindVacate, e.jobID, "", msg.Reason)
}

// JobCheckpointed implements ru.Events (periodic checkpoints).
func (e *jobEvents) JobCheckpointed(msg proto.JobCheckpointMsg) {
	e.storeCheckpoint(msg.Checkpoint)
	st := e.station
	st.mu.Lock()
	if j, ok := st.jobs[e.jobID]; ok {
		j.status.CPUSteps = msg.Steps
		j.status.Checkpoints++
		if j.meter != nil {
			j.meter.ObserveSteps(msg.Steps)
		}
	}
	st.mu.Unlock()
	st.logEvent(eventlog.KindCheckpoint, e.jobID, "", "periodic")
}

func (e *jobEvents) storeCheckpoint(blob []byte) {
	meta, img, err := ckpt.DecodeBytes(blob)
	if err != nil {
		return // corrupt checkpoint: keep the previous one
	}
	_ = e.station.cfg.Store.Put(meta, img)
}

// JobSuspended implements ru.Events.
func (e *jobEvents) JobSuspended(jobID string) {
	e.station.setJobState(jobID, proto.JobSuspendedState)
	e.station.logEvent(eventlog.KindSuspend, jobID, "", "owner returned at exec site")
}

// JobResumed implements ru.Events.
func (e *jobEvents) JobResumed(jobID string) {
	e.station.setJobState(jobID, proto.JobRunning)
	e.station.logEvent(eventlog.KindResume, jobID, "", "owner left within grace")
}

// JobLost implements ru.Events: the execution site died without shipping
// a checkpoint. Requeue from the last stored checkpoint — this is the
// paper's guarantee that remote failures cannot lose the job.
func (e *jobEvents) JobLost(jobID string, err error) {
	st := e.station
	now := time.Now()
	st.mu.Lock()
	if j, ok := st.jobs[jobID]; ok && !j.status.State.Terminal() {
		j.shadow = nil
		j.status.State = proto.JobIdle
		j.status.ExecHost = ""
		j.status.WaitingSince = now
		markTransition(proto.JobIdle)
		st.updateQueueGaugesLocked()
		if j.meter != nil {
			// The exec site died without a checkpoint: everything past the
			// last stored checkpoint will be redone.
			j.meter.Preempted()
			if lost := j.meter.StepsBeyond(j.status.CPUSteps); lost > 0 {
				j.meter.Badput(lost)
			}
			j.meter.StartWaiting(now)
		}
	}
	st.mu.Unlock()
	st.logEvent(eventlog.KindLost, jobID, "", err.Error())
}
