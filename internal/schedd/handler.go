package schedd

import (
	"context"
	"fmt"
	"time"

	"condor/internal/accounting"
	"condor/internal/cvm"
	"condor/internal/eventlog"
	"condor/internal/proto"
	"condor/internal/wire"
)

// handlerFor routes one inbound connection's messages. Placement
// connections (from shadows) are handed to the starter; everything else
// is station RPC.
func (st *Station) handlerFor(peer *wire.Peer) wire.Handler {
	starterHandler := st.starter.Handler(peer)
	return func(ctx context.Context, msg any) (any, error) {
		switch m := msg.(type) {
		case proto.PlaceRequest:
			return starterHandler(ctx, m)
		case proto.SubmitRequest:
			return st.handleSubmit(m)
		case proto.QueueRequest:
			return proto.QueueReply{Station: st.cfg.Name, Jobs: st.Queue()}, nil
		case proto.RemoveRequest:
			return proto.RemoveReply{Removed: st.Remove(m.JobID)}, nil
		case proto.WaitRequest:
			status, err := st.Wait(m.JobID, st.cfg.WaitTimeout)
			if err != nil {
				return proto.WaitReply{Found: false}, nil //nolint:nilerr // absence is data
			}
			return proto.WaitReply{Found: true, Status: status}, nil
		case proto.PollRequest:
			return st.handlePoll(), nil
		case proto.GrantRequest:
			return st.handleGrant(m), nil
		case proto.HistoryRequest:
			var events []eventlog.Event
			switch {
			case m.TraceID != "":
				events = st.events.ForTrace(m.TraceID)
			case m.JobID != "":
				events = st.events.ForJob(m.JobID)
			default:
				events = st.events.Recent(m.Limit)
			}
			return proto.HistoryReply{Events: events}, nil
		case proto.AccountingRequest:
			// Stations answer with the process ledger (their jobs' meters
			// live in accounting.Default); only the coordinator has an
			// allocation view.
			return proto.AccountingReply{Process: accounting.Default.Snapshot()}, nil
		case proto.PreemptRequest:
			return proto.PreemptReply{
				Vacating: st.starter.Vacate(m.JobID, "preempted: "+m.Reason),
			}, nil
		default:
			return nil, fmt.Errorf("schedd: station %s got unexpected %T", st.cfg.Name, msg)
		}
	}
}

func (st *Station) handleSubmit(m proto.SubmitRequest) (proto.SubmitReply, error) {
	var prog *cvm.Program
	var err error
	switch {
	case len(m.ProgramBlob) > 0:
		prog, err = proto.DecodeProgram(m.ProgramBlob)
	case m.Source != "":
		name := m.Name
		if name == "" {
			name = "job"
		}
		prog, err = cvm.Assemble(name, m.Source)
	default:
		err = fmt.Errorf("schedd: submit carries neither source nor program")
	}
	if err != nil {
		return proto.SubmitReply{}, err
	}
	owner := m.Owner
	if owner == "" {
		owner = "unknown"
	}
	jobID, err := st.SubmitJob(owner, prog, SubmitOptions{
		StackWords: m.StackWords,
		Priority:   m.Priority,
	})
	if err != nil {
		return proto.SubmitReply{}, err
	}
	return proto.SubmitReply{JobID: jobID}, nil
}

func (st *Station) handlePoll() proto.PollReply {
	st.mu.Lock()
	st.lastPolled = time.Now()
	st.mu.Unlock()
	reply := proto.PollReply{
		Name:             st.cfg.Name,
		State:            st.State(),
		WaitingJobs:      st.WaitingJobs(),
		DiskFreeBytes:    st.diskFree(),
		IdleStreakMillis: st.tracker.IdleStreak().Milliseconds(),
		AvgIdleMillis:    st.tracker.AvgIdleLen().Milliseconds(),
	}
	if jobID, owner, ok := st.starter.Running(); ok {
		reply.ForeignJob = jobID
		// By convention job ids are "<station>/<n>"; owner is the user,
		// but Up-Down accounting is per-station, so report the home
		// station parsed from the job id.
		reply.ForeignOwnerStation = homeStationOf(jobID)
		_ = owner
	}
	return reply
}

// homeStationOf extracts the home station from a "<station>/<n>" job id.
func homeStationOf(jobID string) string {
	for i := len(jobID) - 1; i >= 0; i-- {
		if jobID[i] == '/' {
			return jobID[:i]
		}
	}
	return jobID
}

func (st *Station) handleGrant(m proto.GrantRequest) proto.GrantReply {
	jobID, err := st.PlaceNext(m.ExecName, m.ExecAddr)
	if err != nil {
		return proto.GrantReply{Used: false, Reason: err.Error()}
	}
	reply := proto.GrantReply{Used: true, JobID: jobID}
	// Hand the coordinator the placed job's trace identity so it can
	// record its own grant span inside the job's trace.
	if sc := st.traceCtxOf(jobID); sc.Valid() {
		reply.Trace = sc.Traceparent()
	}
	return reply
}

// LastPolled returns when the coordinator last polled this station.
func (st *Station) LastPolled() time.Time {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lastPolled
}

// StartRegistrar keeps the station registered: it registers immediately
// and re-registers whenever the coordinator has not polled for three
// intervals — so a restarted coordinator (§2.1: "its recovery at another
// site is simplified") rediscovers the pool without manual action.
// While the coordinator stays silent, re-registration backs off
// exponentially with jitter (up to 16× the interval), so a pool of
// stations does not hammer a restarting coordinator in lockstep; the
// first poll that arrives resets the cadence. Returns a stop function.
func (st *Station) StartRegistrar(coordAddr string, interval time.Duration) (stop func(), err error) {
	if interval <= 0 {
		interval = 2 * time.Minute
	}
	if err := st.Register(coordAddr); err != nil {
		return nil, err
	}
	st.mu.Lock()
	st.lastPolled = time.Now() // grace: assume healthy at start
	st.mu.Unlock()
	stopCh := make(chan struct{})
	doneCh := make(chan struct{})
	go func() {
		defer close(doneCh)
		policy := wire.Retry{BaseDelay: interval, MaxDelay: 16 * interval, Jitter: 0.25}
		attempts := 0
		timer := time.NewTimer(interval)
		defer timer.Stop()
		for {
			select {
			case <-stopCh:
				return
			case <-timer.C:
				wait := interval
				if time.Since(st.LastPolled()) > 3*interval {
					// Best effort; the coordinator may still be down.
					_ = st.Register(coordAddr)
					attempts++
					wait = policy.Backoff(attempts)
				} else {
					attempts = 0
				}
				timer.Reset(wait)
			}
		}
	}()
	return func() {
		close(stopCh)
		<-doneCh
	}, nil
}

// Register announces the station to the coordinator at coordAddr. The
// call rides the station's pooled connection and is retried on
// transient transport faults — registering twice is harmless, so it is
// safely idempotent.
func (st *Station) Register(coordAddr string) error {
	ctx, cancel := context.WithTimeout(context.Background(), st.cfg.DialTimeout+5*time.Second)
	defer cancel()
	addr := st.cfg.AdvertiseAddr
	if addr == "" {
		addr = st.Addr()
	}
	reply, err := st.pool.CallRetry(ctx, coordAddr, proto.RegisterRequest{Name: st.cfg.Name, Addr: addr})
	if err != nil {
		return fmt.Errorf("schedd: register %s with %s: %w", st.cfg.Name, coordAddr, err)
	}
	r, ok := reply.(proto.RegisterReply)
	if !ok || !r.OK {
		return fmt.Errorf("schedd: coordinator refused registration of %s", st.cfg.Name)
	}
	return nil
}
