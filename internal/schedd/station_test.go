package schedd

import (
	"errors"
	"strings"
	"testing"
	"time"

	"condor/internal/ckpt"
	"condor/internal/cvm"
	"condor/internal/eventlog"
	"condor/internal/machine"
	"condor/internal/proto"
	"condor/internal/ru"
)

// newStation builds a fast-interval station for tests.
func newStation(t *testing.T, name string, mon *machine.ScriptedMonitor, store ckpt.Store) *Station {
	t.Helper()
	if mon == nil {
		mon = machine.NewScriptedMonitor(false)
	}
	st, err := New(Config{
		Name:    name,
		Monitor: mon,
		Store:   store,
		Starter: ru.StarterConfig{
			ScanInterval:  5 * time.Millisecond,
			SuspendGrace:  30 * time.Millisecond,
			StepsPerSlice: 10_000,
		},
		DialTimeout: time.Second,
		WaitTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)
	return st
}

func TestSubmitAndQueue(t *testing.T) {
	st := newStation(t, "ws1", nil, nil)
	id1, err := st.Submit("alice", cvm.SumProgram(10), 0)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := st.Submit("bob", cvm.SumProgram(20), 0)
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Fatal("duplicate job ids")
	}
	if !strings.HasPrefix(id1, "ws1/") {
		t.Fatalf("job id %q lacks station prefix", id1)
	}
	q := st.Queue()
	if len(q) != 2 || q[0].ID != id1 || q[1].ID != id2 {
		t.Fatalf("queue = %+v", q)
	}
	if st.WaitingJobs() != 2 {
		t.Fatalf("waiting = %d", st.WaitingJobs())
	}
	if q[0].State != proto.JobIdle || q[0].Owner != "alice" {
		t.Fatalf("job status = %+v", q[0])
	}
}

func TestSubmitValidation(t *testing.T) {
	st := newStation(t, "ws1", nil, nil)
	if _, err := st.Submit("a", nil, 0); err == nil {
		t.Fatal("nil program accepted")
	}
	bad := &cvm.Program{Name: "bad"}
	if _, err := st.Submit("a", bad, 0); err == nil {
		t.Fatal("invalid program accepted")
	}
}

func TestSubmitDiskFull(t *testing.T) {
	store := ckpt.NewMemStore(2048, false) // tiny disk
	st := newStation(t, "ws1", nil, store)
	var sawFull bool
	for i := 0; i < 50; i++ {
		_, err := st.Submit("a", cvm.SumProgram(int64(i)), 0)
		if err != nil {
			if !errors.Is(err, ErrDiskFull) {
				t.Fatalf("unexpected submit error: %v", err)
			}
			sawFull = true
			break
		}
	}
	if !sawFull {
		t.Fatal("tiny store never filled — §4 disk limit not enforced")
	}
}

func TestPlaceNextRunsJobRemotely(t *testing.T) {
	// Two stations: ws1 submits, ws2 executes.
	ws1 := newStation(t, "ws1", nil, nil)
	ws2 := newStation(t, "ws2", nil, nil)
	jobID, err := ws1.Submit("alice", cvm.SumProgram(5000), 0)
	if err != nil {
		t.Fatal(err)
	}
	placed, err := ws1.PlaceNext("ws2", ws2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if placed != jobID {
		t.Fatalf("placed %q, want %q", placed, jobID)
	}
	status, err := ws1.Wait(jobID, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if status.State != proto.JobCompleted || status.ExitCode != 0 {
		t.Fatalf("status = %+v", status)
	}
	if strings.TrimSpace(status.Stdout) != "12502500" {
		t.Fatalf("stdout = %q", status.Stdout)
	}
	if status.ExecHost != "ws2" {
		t.Fatalf("exec host = %q", status.ExecHost)
	}
}

func TestPlaceNextNoJobs(t *testing.T) {
	ws1 := newStation(t, "ws1", nil, nil)
	ws2 := newStation(t, "ws2", nil, nil)
	if _, err := ws1.PlaceNext("ws2", ws2.Addr()); err == nil {
		t.Fatal("placement with empty queue succeeded")
	}
}

func TestPlacementPacing(t *testing.T) {
	mon := machine.NewScriptedMonitor(false)
	st, err := New(Config{
		Name:            "ws1",
		Monitor:         mon,
		PlacementPacing: time.Hour,
		Starter: ru.StarterConfig{
			ScanInterval: 5 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)
	ws2 := newStation(t, "ws2", nil, nil)
	ws3 := newStation(t, "ws3", nil, nil)
	if _, err := st.Submit("a", cvm.SumProgram(10), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Submit("a", cvm.SumProgram(20), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := st.PlaceNext("ws2", ws2.Addr()); err != nil {
		t.Fatal(err)
	}
	if _, err := st.PlaceNext("ws3", ws3.Addr()); err == nil ||
		!strings.Contains(err.Error(), "pacing") {
		t.Fatalf("second immediate placement: err = %v, want pacing refusal", err)
	}
}

func TestLocalPriorityIsFIFO(t *testing.T) {
	ws1 := newStation(t, "ws1", nil, nil)
	ws2 := newStation(t, "ws2", nil, nil)
	first, _ := ws1.Submit("a", cvm.SumProgram(100_000), 0)
	if _, err := ws1.Submit("a", cvm.SumProgram(200_000), 0); err != nil {
		t.Fatal(err)
	}
	placed, err := ws1.PlaceNext("ws2", ws2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if placed != first {
		t.Fatalf("placed %q, want FIFO head %q", placed, first)
	}
}

func TestVacatedJobRequeuesWithCheckpoint(t *testing.T) {
	ws1 := newStation(t, "ws1", nil, nil)
	execMon := machine.NewScriptedMonitor(false)
	ws2, err := New(Config{
		Name:    "ws2",
		Monitor: execMon,
		Starter: ru.StarterConfig{
			ScanInterval:  2 * time.Millisecond,
			SuspendGrace:  5 * time.Millisecond,
			StepsPerSlice: 2_000,
			SliceDelay:    time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ws2.Close)

	jobID, err := ws1.Submit("alice", cvm.SumProgram(3_000_000), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ws1.PlaceNext("ws2", ws2.Addr()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // make progress
	execMon.SetActive(true)           // owner returns on ws2

	deadline := time.Now().Add(5 * time.Second)
	var status proto.JobStatus
	for {
		status, err = ws1.Job(jobID)
		if err != nil {
			t.Fatal(err)
		}
		if status.State == proto.JobIdle {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never requeued; status = %+v", status)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if status.Checkpoints == 0 {
		t.Fatal("requeued without recording a checkpoint")
	}
	if status.CPUSteps == 0 {
		t.Fatal("checkpoint shows zero progress")
	}
	// Re-place on a third machine; it must finish with the right answer.
	ws3 := newStation(t, "ws3", nil, nil)
	if _, err := ws1.PlaceNext("ws3", ws3.Addr()); err != nil {
		t.Fatal(err)
	}
	final, err := ws1.Wait(jobID, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != proto.JobCompleted {
		t.Fatalf("final = %+v", final)
	}
	if strings.TrimSpace(final.Stdout) != "4500001500000" {
		t.Fatalf("stdout = %q", final.Stdout)
	}
	if final.CPUSteps <= status.CPUSteps {
		t.Fatal("no progress preserved across migration")
	}
}

func TestJobLostOnExecCrashRequeues(t *testing.T) {
	ws1 := newStation(t, "ws1", nil, nil)
	ws2 := newStation(t, "ws2", nil, nil)
	jobID, err := ws1.Submit("a", cvm.SumProgram(50_000_000), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ws1.PlaceNext("ws2", ws2.Addr()); err != nil {
		t.Fatal(err)
	}
	ws2.Close() // exec machine "crashes"
	deadline := time.Now().Add(5 * time.Second)
	for {
		status, err := ws1.Job(jobID)
		if err != nil {
			t.Fatal(err)
		}
		if status.State == proto.JobIdle {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lost job never requeued: %+v", status)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestRemoveRunningJob(t *testing.T) {
	ws1 := newStation(t, "ws1", nil, nil)
	ws2 := newStation(t, "ws2", nil, nil)
	jobID, _ := ws1.Submit("a", cvm.SumProgram(100_000_000), 0)
	if _, err := ws1.PlaceNext("ws2", ws2.Addr()); err != nil {
		t.Fatal(err)
	}
	if !ws1.Remove(jobID) {
		t.Fatal("remove refused")
	}
	status, err := ws1.Job(jobID)
	if err != nil {
		t.Fatal(err)
	}
	if status.State != proto.JobRemoved {
		t.Fatalf("state = %v", status.State)
	}
	// The execution machine frees up.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, ok := ws2.Starter().Running(); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("exec machine still claimed after remove")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if ws1.Remove("ws1/999") {
		t.Fatal("removing unknown job reported success")
	}
}

func TestStationState(t *testing.T) {
	mon := machine.NewScriptedMonitor(false)
	st := newStation(t, "ws1", mon, nil)
	if got := st.State(); got != proto.StationIdle {
		t.Fatalf("state = %v, want idle", got)
	}
	mon.SetActive(true)
	if got := st.State(); got != proto.StationOwner {
		t.Fatalf("state = %v, want owner", got)
	}
}

func TestWaitTimesOutWithCurrentStatus(t *testing.T) {
	st := newStation(t, "ws1", nil, nil)
	jobID, _ := st.Submit("a", cvm.SumProgram(10), 0)
	status, err := st.Wait(jobID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if status.State != proto.JobIdle {
		t.Fatalf("state = %v, want idle (never placed)", status.State)
	}
}

func TestWaitUnknownJob(t *testing.T) {
	st := newStation(t, "ws1", nil, nil)
	if _, err := st.Wait("nope", time.Second); !errors.Is(err, ErrNoSuchJob) {
		t.Fatalf("err = %v", err)
	}
	if _, err := st.Job("nope"); !errors.Is(err, ErrNoSuchJob) {
		t.Fatalf("err = %v", err)
	}
}

func TestHomeStationOf(t *testing.T) {
	for in, want := range map[string]string{
		"ws1/5":    "ws1",
		"a/b/9":    "a/b",
		"noslash":  "noslash",
		"ws-2/123": "ws-2",
	} {
		if got := homeStationOf(in); got != want {
			t.Fatalf("homeStationOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("station without name accepted")
	}
	if _, err := New(Config{Name: "x"}); err == nil {
		t.Fatal("station without monitor accepted")
	}
}

func TestCloseIdempotent(t *testing.T) {
	st := newStation(t, "ws1", nil, nil)
	st.Close()
	st.Close() // second close must not panic
	if _, err := st.Submit("a", cvm.SumProgram(1), 0); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("submit after close: %v", err)
	}
}

func TestPriorityOrdersLocalQueue(t *testing.T) {
	ws1 := newStation(t, "ws1", nil, nil)
	ws2 := newStation(t, "ws2", nil, nil)
	low, err := ws1.SubmitJob("a", cvm.SumProgram(100), SubmitOptions{Priority: 0})
	if err != nil {
		t.Fatal(err)
	}
	high, err := ws1.SubmitJob("a", cvm.SumProgram(200), SubmitOptions{Priority: 10})
	if err != nil {
		t.Fatal(err)
	}
	mid, err := ws1.SubmitJob("a", cvm.SumProgram(300), SubmitOptions{Priority: 5})
	if err != nil {
		t.Fatal(err)
	}
	placed, err := ws1.PlaceNext("ws2", ws2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if placed != high {
		t.Fatalf("placed %q, want highest-priority %q", placed, high)
	}
	if _, err := ws1.Wait(high, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	placed, err = ws1.PlaceNext("ws2", ws2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if placed != mid {
		t.Fatalf("second placement %q, want %q", placed, mid)
	}
	_ = low
}

func TestPriorityTieBreaksFIFO(t *testing.T) {
	ws1 := newStation(t, "ws1", nil, nil)
	ws2 := newStation(t, "ws2", nil, nil)
	first, _ := ws1.SubmitJob("a", cvm.SumProgram(100), SubmitOptions{Priority: 3})
	if _, err := ws1.SubmitJob("a", cvm.SumProgram(200), SubmitOptions{Priority: 3}); err != nil {
		t.Fatal(err)
	}
	placed, err := ws1.PlaceNext("ws2", ws2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if placed != first {
		t.Fatalf("placed %q, want FIFO-first %q at equal priority", placed, first)
	}
}

func TestEventLogRecordsJobLifecycle(t *testing.T) {
	ws1 := newStation(t, "ws1", nil, nil)
	ws2 := newStation(t, "ws2", nil, nil)
	jobID, err := ws1.Submit("alice", cvm.SumProgram(5000), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ws1.PlaceNext("ws2", ws2.Addr()); err != nil {
		t.Fatal(err)
	}
	if _, err := ws1.Wait(jobID, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	trail := ws1.Events().ForJob(jobID)
	kinds := make([]eventlog.Kind, 0, len(trail))
	for _, e := range trail {
		kinds = append(kinds, e.Kind)
	}
	want := []eventlog.Kind{eventlog.KindSubmit, eventlog.KindPlace, eventlog.KindComplete}
	if len(kinds) != len(want) {
		t.Fatalf("trail = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("trail[%d] = %v, want %v (full: %v)", i, kinds[i], want[i], kinds)
		}
	}
}

func TestQueueRecoveryFromDurableStore(t *testing.T) {
	dir := t.TempDir()
	store1, err := ckpt.NewDirStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	ws1 := newStation(t, "ws1", nil, store1)
	idA, err := ws1.Submit("alice", cvm.SumProgram(5000), 0)
	if err != nil {
		t.Fatal(err)
	}
	idB, err := ws1.Submit("bob", cvm.SumProgram(100_000), 0)
	if err != nil {
		t.Fatal(err)
	}
	ws1.Close() // submitter machine "reboots"

	store2, err := ckpt.NewDirStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	ws1b := newStation(t, "ws1", nil, store2)
	q := ws1b.Queue()
	if len(q) != 2 {
		t.Fatalf("recovered queue = %+v", q)
	}
	ids := map[string]bool{q[0].ID: true, q[1].ID: true}
	if !ids[idA] || !ids[idB] {
		t.Fatalf("recovered ids %v, want %s and %s", ids, idA, idB)
	}
	// New submissions must not collide with recovered ids.
	idC, err := ws1b.Submit("carol", cvm.SumProgram(10), 0)
	if err != nil {
		t.Fatal(err)
	}
	if ids[idC] {
		t.Fatalf("id collision: %s", idC)
	}
	// A recovered job runs to completion from its stored checkpoint.
	ws2 := newStation(t, "ws2", nil, nil)
	placed, err := ws1b.PlaceNext("ws2", ws2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	status, err := ws1b.Wait(placed, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if status.State != proto.JobCompleted {
		t.Fatalf("recovered job = %+v", status)
	}
}

func TestRecoveryPreservesSubmissionTimeAndOrder(t *testing.T) {
	dir := t.TempDir()
	store1, err := ckpt.NewDirStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	ws1 := newStation(t, "ws1", nil, store1)
	// Eleven jobs so "ws1/10" exists: a lexicographic listing would rank
	// it before "ws1/2" and scramble the recovered queue.
	for i := 0; i < 11; i++ {
		if _, err := ws1.SubmitJob("alice", cvm.SumProgram(1000),
			SubmitOptions{Priority: i % 3}); err != nil {
			t.Fatal(err)
		}
	}
	before := ws1.Queue()
	ws1.Close()

	store2, err := ckpt.NewDirStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	ws1b := newStation(t, "ws1", nil, store2)
	after := ws1b.Queue()
	if len(after) != len(before) {
		t.Fatalf("recovered %d jobs, want %d", len(after), len(before))
	}
	for i := range before {
		if after[i].ID != before[i].ID {
			t.Fatalf("queue[%d] = %s, want %s (order not preserved)", i, after[i].ID, before[i].ID)
		}
		if after[i].Priority != before[i].Priority {
			t.Fatalf("%s recovered priority %d, want %d", after[i].ID, after[i].Priority, before[i].Priority)
		}
		// SubmittedAt round-trips through checkpoint metadata at
		// millisecond resolution; it must be the original submission
		// time, not the recovery time.
		if got, want := after[i].SubmittedAt.UnixMilli(), before[i].SubmittedAt.UnixMilli(); got != want {
			t.Fatalf("%s recovered SubmittedAt %d, want %d", after[i].ID, got, want)
		}
	}
}

func TestRecoveryIgnoresForeignCheckpoints(t *testing.T) {
	dir := t.TempDir()
	store, err := ckpt.NewDirStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Plant a checkpoint belonging to another station.
	img := makeStationImage(t)
	if err := store.Put(ckpt.Meta{JobID: "other/7", Owner: "x"}, img); err != nil {
		t.Fatal(err)
	}
	ws1 := newStation(t, "ws1", nil, store)
	if q := ws1.Queue(); len(q) != 0 {
		t.Fatalf("foreign checkpoint queued: %+v", q)
	}
}

func makeStationImage(t *testing.T) *cvm.Image {
	t.Helper()
	v, err := cvm.New(cvm.SpinProgram(10), cvm.NewMemHost(), cvm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return v.Snapshot()
}
