package schedd

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"condor/internal/proto"
	"condor/internal/wire"
)

// TestRegistrarBacksOffWhileCoordinatorSilent is the regression for the
// lockstep-hammering bug: StartRegistrar used a fixed ticker, so every
// station in the pool re-registered at the same cadence forever while a
// coordinator restarted. Now re-registration backs off exponentially
// (with jitter) while no poll arrives.
func TestRegistrarBacksOffWhileCoordinatorSilent(t *testing.T) {
	var registers atomic.Int64
	// A coordinator that accepts registrations but never polls.
	coord, err := wire.NewServer("127.0.0.1:0", func(pe *wire.Peer) wire.Handler {
		return func(_ context.Context, msg any) (any, error) {
			if _, ok := msg.(proto.RegisterRequest); ok {
				registers.Add(1)
				return proto.RegisterReply{OK: true}, nil
			}
			return nil, nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	st := newStation(t, "ws1", nil, nil)
	const interval = 10 * time.Millisecond
	stop, err := st.StartRegistrar(coord.Addr(), interval)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	// Nothing polls the station, so after the grace window every timer
	// firing re-registers. With a fixed 10ms ticker 600ms would fire
	// ~60 re-registrations; exponential backoff capped at 16×interval
	// admits at most ~12 (3 grace checks + 10/20/40/80/160/160/160ms…),
	// jitter included.
	time.Sleep(600 * time.Millisecond)
	got := registers.Load() - 1 // subtract the initial Register
	if got > 20 {
		t.Fatalf("%d re-registrations in 600ms; backoff not applied", got)
	}
	if got == 0 {
		t.Fatal("registrar never re-registered against a silent coordinator")
	}
}
