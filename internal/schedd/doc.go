// Package schedd implements the per-workstation Condor daemon: the local
// scheduler and background job queue of §2.1, fused with the execution
// side (the starter) since every workstation is both a submitter and a
// potential cycle server.
//
// The division of labour follows the paper's hybrid structure exactly:
//
//   - The station owns its queue. Jobs are submitted here, live here, and
//     the station alone decides which of its queued jobs runs when the
//     coordinator grants it a machine.
//   - The coordinator (internal/coordinator) only hands out capacity. It
//     polls the station every 2 minutes via PollRequest, and awards
//     machines via GrantRequest.
//   - When a job must leave an execution site (owner returned, priority
//     preemption, site crash) its checkpoint returns to this station's
//     checkpoint store and the job goes back to the queue — so "the job
//     will eventually complete, and very little, if any, work will be
//     performed more than once."
//
// The checkpoint store doubles as the disk-space model of §4: when it
// fills, new submissions are refused and the station reports no free
// disk to the coordinator.
package schedd
