package schedd

import (
	"context"
	"strings"
	"testing"
	"time"

	"condor/internal/cvm"
	"condor/internal/proto"
	"condor/internal/wire"
)

// dial connects a test client to the station.
func dial(t *testing.T, st *Station) *wire.Peer {
	t.Helper()
	peer, err := wire.Dial(st.Addr(), time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { peer.Close() })
	return peer
}

func call(t *testing.T, peer *wire.Peer, msg any) any {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	reply, err := peer.Call(ctx, msg)
	if err != nil {
		t.Fatalf("call %T: %v", msg, err)
	}
	return reply
}

func TestWireSubmitFromSource(t *testing.T) {
	st := newStation(t, "ws1", nil, nil)
	peer := dial(t, st)
	reply := call(t, peer, proto.SubmitRequest{
		Owner:  "alice",
		Name:   "tiny",
		Source: ".text\nstart:\n HALT 0\n",
	})
	sr, ok := reply.(proto.SubmitReply)
	if !ok || sr.JobID == "" {
		t.Fatalf("reply = %+v", reply)
	}
	status, err := st.Job(sr.JobID)
	if err != nil || status.Program != "tiny" {
		t.Fatalf("job = %+v err %v", status, err)
	}
}

func TestWireSubmitFromProgramBlob(t *testing.T) {
	st := newStation(t, "ws1", nil, nil)
	peer := dial(t, st)
	blob, err := proto.EncodeProgram(cvm.SumProgram(77))
	if err != nil {
		t.Fatal(err)
	}
	reply := call(t, peer, proto.SubmitRequest{
		Owner:       "bob",
		ProgramBlob: blob,
		Priority:    4,
	})
	sr := reply.(proto.SubmitReply)
	status, err := st.Job(sr.JobID)
	if err != nil || status.Priority != 4 || status.Owner != "bob" {
		t.Fatalf("job = %+v err %v", status, err)
	}
}

func TestWireSubmitRejectsBadInput(t *testing.T) {
	st := newStation(t, "ws1", nil, nil)
	peer := dial(t, st)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := peer.Call(ctx, proto.SubmitRequest{Owner: "x"}); err == nil {
		t.Fatal("empty submit accepted")
	}
	if _, err := peer.Call(ctx, proto.SubmitRequest{Owner: "x", Source: "FROB\n"}); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := peer.Call(ctx, proto.SubmitRequest{Owner: "x", ProgramBlob: []byte("junk")}); err == nil {
		t.Fatal("bad blob accepted")
	}
}

func TestWireQueueRemoveWaitHistory(t *testing.T) {
	ws1 := newStation(t, "ws1", nil, nil)
	ws2 := newStation(t, "ws2", nil, nil)
	peer := dial(t, ws1)

	submit := call(t, peer, proto.SubmitRequest{
		Owner: "alice", Name: "sum", Source: "",
		ProgramBlob: mustBlob(t, cvm.SumProgram(4000)),
	}).(proto.SubmitReply)

	queue := call(t, peer, proto.QueueRequest{}).(proto.QueueReply)
	if queue.Station != "ws1" || len(queue.Jobs) != 1 {
		t.Fatalf("queue = %+v", queue)
	}

	// Run it and wait over the wire.
	if _, err := ws1.PlaceNext("ws2", ws2.Addr()); err != nil {
		t.Fatal(err)
	}
	wait := call(t, peer, proto.WaitRequest{JobID: submit.JobID}).(proto.WaitReply)
	if !wait.Found || wait.Status.State != proto.JobCompleted {
		t.Fatalf("wait = %+v", wait)
	}
	if strings.TrimSpace(wait.Status.Stdout) != "8002000" {
		t.Fatalf("stdout = %q", wait.Status.Stdout)
	}

	// History over the wire: submit → place → complete.
	hist := call(t, peer, proto.HistoryRequest{JobID: submit.JobID}).(proto.HistoryReply)
	if len(hist.Events) != 3 {
		t.Fatalf("history = %+v", hist.Events)
	}

	// Remove (already terminal — still reported true).
	rm := call(t, peer, proto.RemoveRequest{JobID: submit.JobID}).(proto.RemoveReply)
	if !rm.Removed {
		t.Fatalf("remove = %+v", rm)
	}
	rm = call(t, peer, proto.RemoveRequest{JobID: "ws1/999"}).(proto.RemoveReply)
	if rm.Removed {
		t.Fatal("unknown job removed")
	}
}

func TestWireWaitUnknownJob(t *testing.T) {
	st := newStation(t, "ws1", nil, nil)
	peer := dial(t, st)
	wait := call(t, peer, proto.WaitRequest{JobID: "ws1/404"}).(proto.WaitReply)
	if wait.Found {
		t.Fatalf("wait = %+v", wait)
	}
}

func TestWireUnknownMessageRejected(t *testing.T) {
	st := newStation(t, "ws1", nil, nil)
	peer := dial(t, st)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := peer.Call(ctx, proto.RegisterReply{}); err == nil {
		t.Fatal("station accepted a message outside its protocol")
	}
}

func TestWireHistoryLimit(t *testing.T) {
	st := newStation(t, "ws1", nil, nil)
	for i := 0; i < 5; i++ {
		if _, err := st.Submit("a", cvm.SpinProgram(int64(i+1)), 0); err != nil {
			t.Fatal(err)
		}
	}
	peer := dial(t, st)
	hist := call(t, peer, proto.HistoryRequest{Limit: 2}).(proto.HistoryReply)
	if len(hist.Events) != 2 {
		t.Fatalf("limited history = %d events", len(hist.Events))
	}
}

func mustBlob(t *testing.T, p *cvm.Program) []byte {
	t.Helper()
	blob, err := proto.EncodeProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}
