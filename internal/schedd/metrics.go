package schedd

import (
	"condor/internal/proto"
	"condor/internal/telemetry"
)

// Station telemetry (see docs/OBSERVABILITY.md). Per-station series are
// interned once when the station starts; state-transition counters are
// interned here at init so the queue's mutation paths only touch
// atomics.
var (
	mQueueDepth = telemetry.NewGaugeVec("condor_schedd_queue_jobs",
		"Jobs currently in the station's local queue (terminal jobs included until removed).",
		"station")
	mWaitingJobs = telemetry.NewGaugeVec("condor_schedd_waiting_jobs",
		"Jobs queued and idle, waiting for the coordinator to grant capacity.",
		"station")
	mTransitions = telemetry.NewCounterVec("condor_schedd_job_transitions_total",
		"Job state transitions, labeled by the state entered.",
		"state")

	mTransitionByState = map[proto.JobState]*telemetry.Counter{
		proto.JobIdle:           mTransitions.With(proto.JobIdle.String()),
		proto.JobPlacing:        mTransitions.With(proto.JobPlacing.String()),
		proto.JobRunning:        mTransitions.With(proto.JobRunning.String()),
		proto.JobSuspendedState: mTransitions.With(proto.JobSuspendedState.String()),
		proto.JobCompleted:      mTransitions.With(proto.JobCompleted.String()),
		proto.JobFaulted:        mTransitions.With(proto.JobFaulted.String()),
		proto.JobRemoved:        mTransitions.With(proto.JobRemoved.String()),
	}
)

// markTransition counts a job entering state.
func markTransition(state proto.JobState) {
	if c, ok := mTransitionByState[state]; ok {
		c.Inc()
	}
}

// updateQueueGaugesLocked refreshes the station's queue-depth gauges
// from the current job table. Callers hold st.mu (or are still
// single-threaded in New).
func (st *Station) updateQueueGaugesLocked() {
	total, idle := 0, 0
	for _, id := range st.order {
		if j, ok := st.jobs[id]; ok {
			total++
			if j.status.State == proto.JobIdle {
				idle++
			}
		}
	}
	st.gQueue.Set(int64(total))
	st.gWaiting.Set(int64(idle))
}
