package ckpt

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"condor/internal/cvm"
)

// DirStore is a durable Store keeping one checkpoint file per job in a
// directory. The local scheduler uses it so a machine reboot does not
// lose queued work — the paper's guarantee that "the job will eventually
// complete" survives submitter restarts too.
type DirStore struct {
	mu       sync.Mutex
	dir      string
	capacity int64
}

var _ Store = (*DirStore)(nil)

// NewDirStore opens (creating if needed) a directory-backed store.
func NewDirStore(dir string, capacity int64) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: create store dir: %w", err)
	}
	return &DirStore{dir: dir, capacity: capacity}, nil
}

// Dir returns the backing directory.
func (s *DirStore) Dir() string { return s.dir }

func (s *DirStore) path(jobID string) string {
	// Job ids may contain separators like "machine/seq"; flatten them.
	safe := strings.NewReplacer("/", "_", string(filepath.Separator), "_", ":", "_").Replace(jobID)
	return filepath.Join(s.dir, safe+".ckpt")
}

// Put implements Store. The write is atomic: a temp file is renamed into
// place, so a crash mid-write never leaves a truncated checkpoint under
// the job's name.
func (s *DirStore) Put(meta Meta, img *cvm.Image) error {
	if meta.JobID == "" {
		return errors.New("ckpt: empty job id")
	}
	if meta.TextChecksum == "" && img != nil {
		meta.TextChecksum = img.Program.TextChecksum()
	}
	blob, err := EncodeBytes(meta, img)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.capacity > 0 {
		used, err := s.bytesLocked()
		if err != nil {
			return err
		}
		var reclaimed int64
		if fi, err := os.Stat(s.path(meta.JobID)); err == nil {
			reclaimed = fi.Size()
		}
		if used-reclaimed+int64(len(blob)) > s.capacity {
			return fmt.Errorf("%w: need %d bytes, capacity %d",
				ErrDiskFull, used-reclaimed+int64(len(blob)), s.capacity)
		}
	}
	tmp, err := os.CreateTemp(s.dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("ckpt: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: close: %w", err)
	}
	if err := os.Rename(tmpName, s.path(meta.JobID)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: rename: %w", err)
	}
	return nil
}

// Get implements Store.
func (s *DirStore) Get(jobID string) (Meta, *cvm.Image, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := os.Open(s.path(jobID))
	if err != nil {
		if os.IsNotExist(err) {
			return Meta{}, nil, fmt.Errorf("%w: job %q", ErrNotFound, jobID)
		}
		return Meta{}, nil, fmt.Errorf("ckpt: open: %w", err)
	}
	defer f.Close()
	return Decode(f)
}

// Delete implements Store.
func (s *DirStore) Delete(jobID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := os.Remove(s.path(jobID))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("ckpt: delete: %w", err)
	}
	return nil
}

// Has implements Store.
func (s *DirStore) Has(jobID string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := os.Stat(s.path(jobID))
	return err == nil
}

// List implements Store. Unreadable or corrupt files are skipped: a
// damaged checkpoint must not block recovery of the healthy ones.
func (s *DirStore) List() []Meta {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var out []Meta
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".ckpt") {
			continue
		}
		f, err := os.Open(filepath.Join(s.dir, e.Name()))
		if err != nil {
			continue
		}
		meta, _, err := Decode(f)
		f.Close()
		if err != nil {
			continue
		}
		out = append(out, meta)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].JobID < out[j].JobID })
	return out
}

// Usage implements Store.
func (s *DirStore) Usage() Usage {
	s.mu.Lock()
	defer s.mu.Unlock()
	bytes, _ := s.bytesLocked()
	n := 0
	if entries, err := os.ReadDir(s.dir); err == nil {
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".ckpt") {
				n++
			}
		}
	}
	return Usage{Bytes: bytes, Checkpoints: n}
}

func (s *DirStore) bytesLocked() (int64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("ckpt: read dir: %w", err)
	}
	var total int64
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".ckpt") {
			continue
		}
		if fi, err := e.Info(); err == nil {
			total += fi.Size()
		}
	}
	return total, nil
}

// Capacity implements Store.
func (s *DirStore) Capacity() int64 { return s.capacity }
