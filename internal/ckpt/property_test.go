package ckpt

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"condor/internal/cvm"
)

// randomImage builds a structurally valid image with randomized state,
// mimicking a job snapshotted at an arbitrary point.
func randomImage(r *rand.Rand) *cvm.Image {
	progs := []*cvm.Program{
		cvm.SumProgram(int64(r.Intn(10_000) + 1)),
		cvm.PrimeCountProgram(int64(r.Intn(5_000) + 10)),
		cvm.MonteCarloPiProgram(int64(r.Intn(10_000) + 100)),
		cvm.SpinProgram(int64(r.Intn(100_000) + 1)),
	}
	prog := progs[r.Intn(len(progs))]
	vm, err := cvm.New(prog, cvm.NewMemHost(), cvm.Config{})
	if err != nil {
		panic(err)
	}
	// Run a random number of steps so the snapshot lands anywhere in the
	// program's life.
	if _, err := vm.Run(uint64(r.Intn(50_000))); err != nil {
		// Programs here cannot fault; a host error is impossible with
		// MemHost.
		panic(err)
	}
	return vm.Snapshot()
}

// TestPropertyEncodeDecodeIdentity: any snapshot encodes and decodes to
// an image whose resumed execution is indistinguishable.
func TestPropertyEncodeDecodeIdentity(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		img := randomImage(r)
		meta := Meta{JobID: "p/1", Owner: "prop", Sequence: uint64(r.Intn(100))}
		blob, err := EncodeBytes(meta, img)
		if err != nil {
			return false
		}
		gotMeta, gotImg, err := DecodeBytes(blob)
		if err != nil {
			return false
		}
		if gotMeta.Sequence != meta.Sequence || gotMeta.JobID != meta.JobID {
			return false
		}
		if gotImg.PC != img.PC || gotImg.SP != img.SP || gotImg.Steps != img.Steps ||
			gotImg.RNG != img.RNG || gotImg.Status != img.Status {
			return false
		}
		if len(gotImg.Mem) != len(img.Mem) || len(gotImg.Stack) != len(img.Stack) {
			return false
		}
		for i := range img.Mem {
			if gotImg.Mem[i] != img.Mem[i] {
				return false
			}
		}
		for i := range img.Stack {
			if gotImg.Stack[i] != img.Stack[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySingleBitFlipsDetected: any single-byte corruption of the
// payload region is detected (CRC), and any corruption of the header is
// either detected or produces a structured error — never a silent
// wrong-image restore.
func TestPropertySingleBitFlipsDetected(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	img := randomImage(r)
	blob, err := EncodeBytes(Meta{JobID: "p/2"}, img)
	if err != nil {
		t.Fatal(err)
	}
	property := func(pos uint16, bit uint8) bool {
		i := int(pos) % len(blob)
		mutated := append([]byte(nil), blob...)
		mutated[i] ^= 1 << (bit % 8)
		if bytes.Equal(mutated, blob) {
			return true // no-op flip cannot happen with xor, but be safe
		}
		meta, decoded, err := DecodeBytes(mutated)
		if err != nil {
			return true // detected: good
		}
		// Decoded successfully despite the flip: only acceptable if the
		// flip landed in a part of the payload whose corruption keeps
		// both CRC and content identical — impossible for single flips.
		// A header length-field flip that still decodes cleanly would
		// also be a miss.
		_ = meta
		_ = decoded
		return false
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyStorePutGetIdempotent: store round trips preserve resumed
// behaviour for both store variants.
func TestPropertyStorePutGetIdempotent(t *testing.T) {
	property := func(seed int64, shared bool) bool {
		r := rand.New(rand.NewSource(seed))
		img := randomImage(r)
		s := NewMemStore(0, shared)
		if err := s.Put(Meta{JobID: "p/3"}, img); err != nil {
			return false
		}
		_, got, err := s.Get("p/3")
		if err != nil {
			return false
		}
		// Resume both and compare final answers. A snapshot taken after
		// the program halted has nothing left to run.
		finish := func(im *cvm.Image) (string, bool) {
			host := cvm.NewMemHost()
			vm, err := cvm.Restore(im, host)
			if err != nil {
				return "", false
			}
			if vm.Status() != cvm.StatusRunning {
				return "", true
			}
			if st, err := vm.Run(100_000_000); st != cvm.StatusHalted || err != nil {
				return "", false
			}
			return host.Stdout(), true
		}
		a, ok1 := finish(img)
		b, ok2 := finish(got)
		return ok1 && ok2 && a == b
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
