package ckpt

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"condor/internal/cvm"
)

// Store-level errors.
var (
	// ErrNotFound is returned when no checkpoint exists for the job.
	ErrNotFound = errors.New("ckpt: checkpoint not found")
	// ErrDiskFull is returned when storing a checkpoint would exceed the
	// store's capacity — the §4 "users let their disk become full"
	// condition that blocks further placements.
	ErrDiskFull = errors.New("ckpt: disk full")
)

// Usage summarizes a store's footprint.
type Usage struct {
	// Bytes is the total space consumed, including shared text.
	Bytes int64 `json:"bytes"`
	// Checkpoints is the number of stored checkpoints.
	Checkpoints int `json:"checkpoints"`
	// TextBytes is the portion of Bytes occupied by text segments.
	TextBytes int64 `json:"textBytes"`
	// SharedTexts is the number of distinct text segments stored.
	SharedTexts int `json:"sharedTexts"`
}

// Store is a per-machine checkpoint repository. Implementations must be
// safe for concurrent use.
type Store interface {
	// Put saves the checkpoint, replacing any previous one for the job.
	Put(meta Meta, img *cvm.Image) error
	// Get returns the most recent checkpoint for the job.
	Get(jobID string) (Meta, *cvm.Image, error)
	// Delete removes the job's checkpoint. Deleting a missing checkpoint
	// is not an error.
	Delete(jobID string) error
	// Has reports whether a checkpoint exists for the job.
	Has(jobID string) bool
	// List returns metadata for all stored checkpoints, sorted by job id.
	List() []Meta
	// Usage returns the store's current footprint.
	Usage() Usage
	// Capacity returns the store's byte capacity (0 = unlimited).
	Capacity() int64
}

const instrBytes = 32 // one Instr is 4 words

func textBytes(n int) int64 { return int64(n) * instrBytes }

// cloneImage deep-copies an image so the store and the caller cannot
// mutate each other's state. The program text is immutable by the VM's
// contract and may be shared.
func cloneImage(img *cvm.Image) *cvm.Image {
	clone := *img
	clone.Mem = append([]int64(nil), img.Mem...)
	clone.Stack = append([]int64(nil), img.Stack...)
	clone.Files = append([]cvm.OpenFile(nil), img.Files...)
	prog := *img.Program
	prog.Data = append([]int64(nil), img.Program.Data...)
	clone.Program = &prog
	return &clone
}

// textEntry is one reference-counted shared text segment.
type textEntry struct {
	text []cvm.Instr
	refs int
}

type memCkpt struct {
	meta  Meta
	img   *cvm.Image
	bytes int64 // space charged to this checkpoint (excludes shared text)
}

// MemStore is an in-memory Store with optional shared text segments.
// Daemons use it for fast in-process pools and tests; DirStore provides
// the durable variant.
type MemStore struct {
	mu       sync.Mutex
	capacity int64
	share    bool
	ckpts    map[string]memCkpt
	texts    map[string]*textEntry
}

var _ Store = (*MemStore)(nil)

// NewMemStore returns an in-memory store. capacity is the byte budget (0
// = unlimited); shareText enables the §4 shared-text optimization.
func NewMemStore(capacity int64, shareText bool) *MemStore {
	return &MemStore{
		capacity: capacity,
		share:    shareText,
		ckpts:    make(map[string]memCkpt),
		texts:    make(map[string]*textEntry),
	}
}

// Put implements Store.
func (s *MemStore) Put(meta Meta, img *cvm.Image) error {
	if img == nil {
		return errors.New("ckpt: nil image")
	}
	if meta.JobID == "" {
		return errors.New("ckpt: empty job id")
	}
	if err := img.Validate(); err != nil {
		return fmt.Errorf("ckpt: refusing to store invalid image: %w", err)
	}
	if meta.TextChecksum == "" {
		meta.TextChecksum = img.Program.TextChecksum()
	}
	if meta.Arch == "" {
		meta.Arch = ArchCVM64
	}
	stored := cloneImage(img)

	newBytes := stored.SizeBytes()
	if s.share {
		newBytes -= textBytes(len(img.Program.Text))
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	var newTextBytes int64
	if s.share {
		if _, exists := s.texts[meta.TextChecksum]; !exists {
			newTextBytes = textBytes(len(img.Program.Text))
		}
	}
	var reclaimed int64
	if old, ok := s.ckpts[meta.JobID]; ok {
		reclaimed = old.bytes
	}
	if s.capacity > 0 {
		projected := s.usageLocked().Bytes - reclaimed + newBytes + newTextBytes
		if projected > s.capacity {
			return fmt.Errorf("%w: need %d bytes, capacity %d", ErrDiskFull, projected, s.capacity)
		}
	}
	if old, ok := s.ckpts[meta.JobID]; ok {
		s.dropTextRefLocked(old.meta.TextChecksum)
	}
	if s.share {
		entry, ok := s.texts[meta.TextChecksum]
		if !ok {
			entry = &textEntry{text: img.Program.Text}
			s.texts[meta.TextChecksum] = entry
		}
		entry.refs++
		// The stored image shares the canonical text slice.
		stored.Program.Text = entry.text
	}
	s.ckpts[meta.JobID] = memCkpt{meta: meta, img: stored, bytes: newBytes}
	return nil
}

// Get implements Store.
func (s *MemStore) Get(jobID string) (Meta, *cvm.Image, error) {
	s.mu.Lock()
	ck, ok := s.ckpts[jobID]
	s.mu.Unlock()
	if !ok {
		return Meta{}, nil, fmt.Errorf("%w: job %q", ErrNotFound, jobID)
	}
	return ck.meta, cloneImage(ck.img), nil
}

// Delete implements Store.
func (s *MemStore) Delete(jobID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ck, ok := s.ckpts[jobID]
	if !ok {
		return nil
	}
	delete(s.ckpts, jobID)
	s.dropTextRefLocked(ck.meta.TextChecksum)
	return nil
}

func (s *MemStore) dropTextRefLocked(sum string) {
	if !s.share {
		return
	}
	entry, ok := s.texts[sum]
	if !ok {
		return
	}
	entry.refs--
	if entry.refs <= 0 {
		delete(s.texts, sum)
	}
}

// Has implements Store.
func (s *MemStore) Has(jobID string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.ckpts[jobID]
	return ok
}

// List implements Store.
func (s *MemStore) List() []Meta {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Meta, 0, len(s.ckpts))
	for _, ck := range s.ckpts {
		out = append(out, ck.meta)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].JobID < out[j].JobID })
	return out
}

// Usage implements Store.
func (s *MemStore) Usage() Usage {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.usageLocked()
}

func (s *MemStore) usageLocked() Usage {
	u := Usage{Checkpoints: len(s.ckpts), SharedTexts: len(s.texts)}
	for _, ck := range s.ckpts {
		u.Bytes += ck.bytes
	}
	for _, t := range s.texts {
		u.TextBytes += textBytes(len(t.text))
	}
	u.Bytes += u.TextBytes
	return u
}

// Capacity implements Store.
func (s *MemStore) Capacity() int64 { return s.capacity }
