package ckpt

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"

	"condor/internal/cvm"
)

// storeUnderTest runs the same behavioural suite against every Store
// implementation.
func storeUnderTest(t *testing.T, name string, mk func(t *testing.T, capacity int64) Store) {
	t.Run(name+"/put-get-roundtrip", func(t *testing.T) {
		s := mk(t, 0)
		img := makeImage(t, cvm.SumProgram(200), 25)
		meta := Meta{JobID: "ws1/1", Owner: "A", ProgramName: "sum", Sequence: 1}
		if err := s.Put(meta, img); err != nil {
			t.Fatal(err)
		}
		gotMeta, gotImg, err := s.Get("ws1/1")
		if err != nil {
			t.Fatal(err)
		}
		if gotMeta.Owner != "A" || gotMeta.TextChecksum == "" {
			t.Fatalf("meta = %+v", gotMeta)
		}
		host := cvm.NewMemHost()
		v, err := cvm.Restore(gotImg, host)
		if err != nil {
			t.Fatal(err)
		}
		if st, err := v.Run(1_000_000); st != cvm.StatusHalted || err != nil {
			t.Fatalf("st %v err %v", st, err)
		}
		if got := strings.TrimSpace(host.Stdout()); got != "20100" {
			t.Fatalf("resumed output = %q", got)
		}
	})

	t.Run(name+"/get-missing", func(t *testing.T) {
		s := mk(t, 0)
		if _, _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("err = %v, want ErrNotFound", err)
		}
	})

	t.Run(name+"/delete-idempotent", func(t *testing.T) {
		s := mk(t, 0)
		img := makeImage(t, cvm.SpinProgram(10), 3)
		if err := s.Put(Meta{JobID: "j"}, img); err != nil {
			t.Fatal(err)
		}
		if !s.Has("j") {
			t.Fatal("Has = false after Put")
		}
		if err := s.Delete("j"); err != nil {
			t.Fatal(err)
		}
		if s.Has("j") {
			t.Fatal("Has = true after Delete")
		}
		if err := s.Delete("j"); err != nil {
			t.Fatalf("second delete: %v", err)
		}
	})

	t.Run(name+"/replace-same-job", func(t *testing.T) {
		s := mk(t, 0)
		img1 := makeImage(t, cvm.SpinProgram(100), 5)
		img2 := makeImage(t, cvm.SpinProgram(100), 50)
		if err := s.Put(Meta{JobID: "j", Sequence: 1}, img1); err != nil {
			t.Fatal(err)
		}
		if err := s.Put(Meta{JobID: "j", Sequence: 2}, img2); err != nil {
			t.Fatal(err)
		}
		meta, img, err := s.Get("j")
		if err != nil {
			t.Fatal(err)
		}
		if meta.Sequence != 2 || img.Steps != 50 {
			t.Fatalf("got seq %d steps %d, want the replacement", meta.Sequence, img.Steps)
		}
		if u := s.Usage(); u.Checkpoints != 1 {
			t.Fatalf("usage after replace = %+v", u)
		}
	})

	t.Run(name+"/capacity-enforced", func(t *testing.T) {
		img := makeImage(t, cvm.SpinProgram(10), 3)
		small := mk(t, 64) // far below one checkpoint
		err := small.Put(Meta{JobID: "j"}, img)
		if !errors.Is(err, ErrDiskFull) {
			t.Fatalf("err = %v, want ErrDiskFull", err)
		}
		if small.Has("j") {
			t.Fatal("failed Put left residue")
		}
	})

	t.Run(name+"/list-sorted", func(t *testing.T) {
		s := mk(t, 0)
		img := makeImage(t, cvm.SpinProgram(10), 3)
		for _, id := range []string{"c", "a", "b"} {
			if err := s.Put(Meta{JobID: id}, img); err != nil {
				t.Fatal(err)
			}
		}
		list := s.List()
		if len(list) != 3 || list[0].JobID != "a" || list[2].JobID != "c" {
			t.Fatalf("list = %+v", list)
		}
	})

	t.Run(name+"/empty-job-id-rejected", func(t *testing.T) {
		s := mk(t, 0)
		img := makeImage(t, cvm.SpinProgram(10), 3)
		if err := s.Put(Meta{}, img); err == nil {
			t.Fatal("empty job id accepted")
		}
	})
}

func TestMemStore(t *testing.T) {
	storeUnderTest(t, "mem", func(t *testing.T, capacity int64) Store {
		return NewMemStore(capacity, false)
	})
}

func TestMemStoreShared(t *testing.T) {
	storeUnderTest(t, "mem-shared", func(t *testing.T, capacity int64) Store {
		return NewMemStore(capacity, true)
	})
}

func TestDirStore(t *testing.T) {
	storeUnderTest(t, "dir", func(t *testing.T, capacity int64) Store {
		s, err := NewDirStore(t.TempDir(), capacity)
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
}

func TestMemStoreSharedTextSavesSpace(t *testing.T) {
	// Many parameter-sweep jobs of the same program: shared store keeps
	// one text; private store keeps one per job (§4).
	const jobs = 20
	shared := NewMemStore(0, true)
	private := NewMemStore(0, false)
	for i := 0; i < jobs; i++ {
		img := makeImage(t, cvm.SumProgram(int64(1000+i)), 10)
		meta := Meta{JobID: fmt.Sprintf("j%02d", i)}
		if err := shared.Put(meta, img); err != nil {
			t.Fatal(err)
		}
		if err := private.Put(meta, img); err != nil {
			t.Fatal(err)
		}
	}
	su, pu := shared.Usage(), private.Usage()
	if su.SharedTexts != 1 {
		t.Fatalf("shared texts = %d, want 1", su.SharedTexts)
	}
	if su.Bytes >= pu.Bytes {
		t.Fatalf("shared store (%d B) not smaller than private (%d B)", su.Bytes, pu.Bytes)
	}
	// The saving should be roughly (jobs-1) text segments.
	saving := pu.Bytes - su.Bytes
	if saving < int64(jobs-2)*su.TextBytes/int64(jobs) {
		t.Fatalf("saving %d B implausibly small (text is %d B)", saving, su.TextBytes)
	}
}

func TestMemStoreSharedTextRefcounting(t *testing.T) {
	s := NewMemStore(0, true)
	imgA := makeImage(t, cvm.SumProgram(1), 5)
	imgB := makeImage(t, cvm.SumProgram(2), 5)
	if err := s.Put(Meta{JobID: "a"}, imgA); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Meta{JobID: "b"}, imgB); err != nil {
		t.Fatal(err)
	}
	if u := s.Usage(); u.SharedTexts != 1 {
		t.Fatalf("shared texts = %d, want 1", u.SharedTexts)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if u := s.Usage(); u.SharedTexts != 1 {
		t.Fatal("text dropped while still referenced")
	}
	// Job b must still be restorable after a's delete.
	if _, img, err := s.Get("b"); err != nil || len(img.Program.Text) == 0 {
		t.Fatalf("get b after delete a: %v", err)
	}
	if err := s.Delete("b"); err != nil {
		t.Fatal(err)
	}
	if u := s.Usage(); u.SharedTexts != 0 || u.Bytes != 0 {
		t.Fatalf("store not empty after all deletes: %+v", u)
	}
}

func TestMemStoreDeepCopy(t *testing.T) {
	s := NewMemStore(0, false)
	img := makeImage(t, cvm.SumProgram(100), 10)
	if err := s.Put(Meta{JobID: "j"}, img); err != nil {
		t.Fatal(err)
	}
	img.Mem[0] = -999 // caller mutates after Put
	_, got, err := s.Get("j")
	if err != nil {
		t.Fatal(err)
	}
	if got.Mem[0] == -999 {
		t.Fatal("store shares memory with caller")
	}
	got.Mem[0] = -777 // caller mutates the Get result
	_, again, err := s.Get("j")
	if err != nil {
		t.Fatal(err)
	}
	if again.Mem[0] == -777 {
		t.Fatal("store handed out shared memory")
	}
}

func TestDirStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewDirStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	img := makeImage(t, cvm.SumProgram(300), 20)
	if err := s1.Put(Meta{JobID: "ws1/9", Owner: "B"}, img); err != nil {
		t.Fatal(err)
	}
	// "Reboot": a new store over the same directory sees the checkpoint.
	s2, err := NewDirStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	meta, got, err := s2.Get("ws1/9")
	if err != nil {
		t.Fatal(err)
	}
	if meta.Owner != "B" || got.Steps != img.Steps {
		t.Fatalf("recovered meta %+v steps %d", meta, got.Steps)
	}
	list := s2.List()
	if len(list) != 1 || list[0].JobID != "ws1/9" {
		t.Fatalf("list after reopen = %+v", list)
	}
}

func TestDirStoreSkipsCorruptFilesInList(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDirStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	img := makeImage(t, cvm.SpinProgram(10), 3)
	if err := s.Put(Meta{JobID: "good"}, img); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(t, dir+"/bad.ckpt", []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	list := s.List()
	if len(list) != 1 || list[0].JobID != "good" {
		t.Fatalf("list = %+v, want only the good checkpoint", list)
	}
}

func writeFile(t *testing.T, path string, data []byte) error {
	t.Helper()
	return os.WriteFile(path, data, 0o644)
}
