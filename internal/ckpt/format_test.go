package ckpt

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"condor/internal/cvm"
)

func makeImage(t *testing.T, prog *cvm.Program, steps uint64) *cvm.Image {
	t.Helper()
	v, err := cvm.New(prog, cvm.NewMemHost(), cvm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if steps > 0 {
		if _, err := v.Run(steps); err != nil {
			t.Fatal(err)
		}
	}
	return v.Snapshot()
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	img := makeImage(t, cvm.SumProgram(500), 37)
	meta := Meta{JobID: "ws01/7", Owner: "userA", ProgramName: "sum", Sequence: 3, CPUSteps: 37}
	var buf bytes.Buffer
	if err := Encode(&buf, meta, img); err != nil {
		t.Fatal(err)
	}
	gotMeta, gotImg, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta.JobID != meta.JobID || gotMeta.Owner != meta.Owner || gotMeta.Sequence != 3 {
		t.Fatalf("meta round trip = %+v", gotMeta)
	}
	if gotMeta.Arch != ArchCVM64 {
		t.Fatalf("arch defaulting failed: %q", gotMeta.Arch)
	}
	if gotImg.PC != img.PC || gotImg.Steps != img.Steps {
		t.Fatalf("image round trip: pc %d/%d steps %d/%d", gotImg.PC, img.PC, gotImg.Steps, img.Steps)
	}
	// The decoded image must actually resume and finish correctly.
	host := cvm.NewMemHost()
	v, err := cvm.Restore(gotImg, host)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := v.Run(1_000_000); st != cvm.StatusHalted || err != nil {
		t.Fatalf("resumed: st %v err %v", st, err)
	}
	if got := strings.TrimSpace(host.Stdout()); got != "125250" {
		t.Fatalf("sum(500) after checkpoint = %q", got)
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	_, _, err := DecodeBytes([]byte("NOTACKPTxxxxxxxxxxxxxxxxxxxx"))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	img := makeImage(t, cvm.SpinProgram(10), 5)
	blob, err := EncodeBytes(Meta{JobID: "j"}, img)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 5, len(Magic) + 11, len(blob) / 2, len(blob) - 1} {
		if _, _, err := DecodeBytes(blob[:cut]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut=%d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	img := makeImage(t, cvm.SpinProgram(10), 5)
	blob, err := EncodeBytes(Meta{JobID: "j"}, img)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte; CRC must catch it.
	blob[len(blob)-3] ^= 0xff
	if _, _, err := DecodeBytes(blob); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestDecodeRejectsWrongVersion(t *testing.T) {
	img := makeImage(t, cvm.SpinProgram(10), 5)
	blob, err := EncodeBytes(Meta{JobID: "j"}, img)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(Magic)+3] = 99 // version field
	if _, _, err := DecodeBytes(blob); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestDecodeRejectsForeignArchitecture(t *testing.T) {
	img := makeImage(t, cvm.SpinProgram(10), 5)
	blob, err := EncodeBytes(Meta{JobID: "j", Arch: "sun3"}, img)
	if err != nil {
		t.Fatal(err)
	}
	// Arch defaulting only applies to empty arch; "sun3" is preserved and
	// must be refused on restore, per the §5.4 constraint.
	if _, _, err := DecodeBytes(blob); !errors.Is(err, ErrArchMismatch) {
		t.Fatalf("err = %v, want ErrArchMismatch", err)
	}
}

func TestEncodeRejectsNilOrInvalidImage(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, Meta{JobID: "j"}, nil); err == nil {
		t.Fatal("nil image encoded")
	}
	img := makeImage(t, cvm.SpinProgram(10), 5)
	img.SP = 99 // corrupt
	if err := Encode(&buf, Meta{JobID: "j"}, img); err == nil {
		t.Fatal("invalid image encoded")
	}
}

func TestCompressedRoundTripAndSmaller(t *testing.T) {
	// A big, mostly-zero bss: deflate should crush it.
	prog := cvm.MustAssemble("sparse", ".bss\nbuf: .space 65536\n.text\nstart:\n HALT 0\n")
	vm, err := cvm.New(prog, cvm.NewMemHost(), cvm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	img := vm.Snapshot()
	meta := Meta{JobID: "c/1"}
	plain, err := EncodeBytes(meta, img)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := EncodeBytesWith(meta, img, Options{Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(packed) >= len(plain)/4 {
		t.Fatalf("compression weak: %d vs %d bytes", len(packed), len(plain))
	}
	gotMeta, gotImg, err := DecodeBytes(packed)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta.JobID != "c/1" || len(gotImg.Mem) != len(img.Mem) {
		t.Fatalf("compressed round trip lost data: %+v", gotMeta)
	}
	// And the restored VM is valid.
	if _, err := cvm.Restore(gotImg, cvm.NewMemHost()); err != nil {
		t.Fatal(err)
	}
}

func TestCompressedCorruptionDetected(t *testing.T) {
	vm, err := cvm.New(cvm.SumProgram(50), cvm.NewMemHost(), cvm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := EncodeBytesWith(Meta{JobID: "c/2"}, vm.Snapshot(), Options{Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-2] ^= 0x55
	if _, _, err := DecodeBytes(blob); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestAbsurdPayloadLengthRejected(t *testing.T) {
	vm, err := cvm.New(cvm.SpinProgram(5), cvm.NewMemHost(), cvm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := EncodeBytes(Meta{JobID: "c/3"}, vm.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite the payload-length field with a huge value.
	for i := 0; i < 4; i++ {
		blob[len(Magic)+8+i] = 0xff
	}
	_, _, err = DecodeBytes(blob)
	if err == nil {
		t.Fatal("absurd length accepted")
	}
}
