package ckpt

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"condor/internal/cvm"
)

// Magic identifies a Condor checkpoint file.
const Magic = "CNDRCKPT"

// Version is the current checkpoint format version. Version 2 added the
// flags word (compression); version-1 files are no longer produced but
// the constant history is: 1 = no flags word, 2 = flags word present.
const Version = 2

// ArchCVM64 is the architecture tag for the 64-bit word VM. A checkpoint
// written on one architecture can only be restored on the same one — the
// paper's §5.4 notes that a job started on a VAX could not move to a SUN.
const ArchCVM64 = "cvm64"

// Format-level errors, matchable with errors.Is.
var (
	ErrBadMagic     = errors.New("ckpt: bad magic (not a checkpoint file)")
	ErrBadVersion   = errors.New("ckpt: unsupported format version")
	ErrCorrupt      = errors.New("ckpt: payload checksum mismatch")
	ErrArchMismatch = errors.New("ckpt: architecture mismatch")
	ErrTruncated    = errors.New("ckpt: truncated file")
)

// Meta is the checkpoint header's descriptive portion.
type Meta struct {
	JobID        string `json:"jobId"`
	Owner        string `json:"owner"`
	ProgramName  string `json:"programName"`
	TextChecksum string `json:"textChecksum"`
	Arch         string `json:"arch"`
	// Sequence is the checkpoint generation number for the job; each new
	// checkpoint of the same job increments it.
	Sequence uint64 `json:"sequence"`
	// CPUSteps is the guest CPU consumed at checkpoint time, so progress
	// is visible without decoding the image.
	CPUSteps uint64 `json:"cpuSteps"`
	// SubmittedAtUnixMilli is when the job was originally submitted. It
	// rides every checkpoint generation so a schedd restart restores the
	// true submission time (and with it stable queue order) instead of
	// re-stamping recovered jobs with the recovery time.
	SubmittedAtUnixMilli int64 `json:"submittedAtUnixMilli,omitempty"`
	// Priority is the job's local queue priority, preserved across a
	// schedd restart for the same reason.
	Priority int `json:"priority,omitempty"`
	// TraceID is the job's distributed-trace identity (32 lowercase hex
	// chars, see internal/trace). It rides every checkpoint generation so
	// one trace keeps following the job across vacate/migrate hops,
	// schedd restarts, and placements through peers that predate trace
	// propagation on the wire.
	TraceID string `json:"traceID,omitempty"`
}

// flag bits in the header's flags word.
const flagDeflate = 1 << 0

// Options tunes encoding.
type Options struct {
	// Compress deflates the payload. Checkpoint files are dominated by
	// word-aligned memory with small values, which deflate shrinks
	// severalfold — directly reducing the §3.1 transfer cost.
	Compress bool
}

// Encode writes an uncompressed checkpoint for img to w. If meta.Arch is
// empty it defaults to ArchCVM64.
func Encode(w io.Writer, meta Meta, img *cvm.Image) error {
	return EncodeWith(w, meta, img, Options{})
}

// EncodeWith is Encode with options.
func EncodeWith(w io.Writer, meta Meta, img *cvm.Image, opts Options) error {
	if img == nil {
		return errors.New("ckpt: nil image")
	}
	if err := img.Validate(); err != nil {
		return fmt.Errorf("ckpt: refusing to encode invalid image: %w", err)
	}
	if meta.Arch == "" {
		meta.Arch = ArchCVM64
	}
	var payload bytes.Buffer
	enc := gob.NewEncoder(&payload)
	if err := enc.Encode(meta); err != nil {
		return fmt.Errorf("ckpt: encode meta: %w", err)
	}
	if err := enc.Encode(img); err != nil {
		return fmt.Errorf("ckpt: encode image: %w", err)
	}
	body := payload.Bytes()
	var flags uint32
	if opts.Compress {
		var compressed bytes.Buffer
		fw, err := flate.NewWriter(&compressed, flate.BestSpeed)
		if err != nil {
			return fmt.Errorf("ckpt: deflate init: %w", err)
		}
		if _, err := fw.Write(body); err != nil {
			return fmt.Errorf("ckpt: deflate: %w", err)
		}
		if err := fw.Close(); err != nil {
			return fmt.Errorf("ckpt: deflate close: %w", err)
		}
		// Only keep compression when it actually helps.
		if compressed.Len() < len(body) {
			body = compressed.Bytes()
			flags |= flagDeflate
		}
	}
	// The CRC covers the flags word and the payload, so a corrupted
	// flag cannot silently change interpretation.
	crc := crc32.NewIEEE()
	var flagBytes [4]byte
	binary.BigEndian.PutUint32(flagBytes[:], flags)
	crc.Write(flagBytes[:])
	crc.Write(body)
	header := make([]byte, 0, len(Magic)+4+4+4+4)
	header = append(header, Magic...)
	header = binary.BigEndian.AppendUint32(header, Version)
	header = binary.BigEndian.AppendUint32(header, flags)
	header = binary.BigEndian.AppendUint32(header, uint32(len(body)))
	header = binary.BigEndian.AppendUint32(header, crc.Sum32())
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("ckpt: write header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("ckpt: write payload: %w", err)
	}
	return nil
}

// Decode reads a checkpoint from r, verifying magic, version and CRC.
func Decode(r io.Reader) (Meta, *cvm.Image, error) {
	var meta Meta
	header := make([]byte, len(Magic)+16)
	if _, err := io.ReadFull(r, header); err != nil {
		return meta, nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if string(header[:len(Magic)]) != Magic {
		return meta, nil, ErrBadMagic
	}
	version := binary.BigEndian.Uint32(header[len(Magic):])
	if version != Version {
		return meta, nil, fmt.Errorf("%w: got %d, want %d", ErrBadVersion, version, Version)
	}
	flags := binary.BigEndian.Uint32(header[len(Magic)+4:])
	payloadLen := binary.BigEndian.Uint32(header[len(Magic)+8:])
	wantCRC := binary.BigEndian.Uint32(header[len(Magic)+12:])
	if payloadLen > maxPayloadBytes {
		return meta, nil, fmt.Errorf("%w: absurd payload length %d", ErrCorrupt, payloadLen)
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return meta, nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	crc := crc32.NewIEEE()
	crc.Write(header[len(Magic)+4 : len(Magic)+8]) // flags word
	crc.Write(payload)
	if crc.Sum32() != wantCRC {
		return meta, nil, ErrCorrupt
	}
	if flags&flagDeflate != 0 {
		inflated, err := io.ReadAll(flate.NewReader(bytes.NewReader(payload)))
		if err != nil {
			return meta, nil, fmt.Errorf("%w: inflate: %v", ErrCorrupt, err)
		}
		payload = inflated
	}
	dec := gob.NewDecoder(bytes.NewReader(payload))
	if err := dec.Decode(&meta); err != nil {
		return meta, nil, fmt.Errorf("ckpt: decode meta: %w", err)
	}
	var img cvm.Image
	if err := dec.Decode(&img); err != nil {
		return meta, nil, fmt.Errorf("ckpt: decode image: %w", err)
	}
	if meta.Arch != ArchCVM64 {
		return meta, nil, fmt.Errorf("%w: checkpoint is %q, this pool runs %q",
			ErrArchMismatch, meta.Arch, ArchCVM64)
	}
	if err := img.Validate(); err != nil {
		return meta, nil, fmt.Errorf("ckpt: decoded image invalid: %w", err)
	}
	return meta, &img, nil
}

// maxPayloadBytes bounds a checkpoint payload (matches the wire frame
// cap) so a corrupt length field cannot trigger a huge allocation.
const maxPayloadBytes = 64 << 20

// EncodeBytes is Encode into a fresh byte slice.
func EncodeBytes(meta Meta, img *cvm.Image) ([]byte, error) {
	var buf bytes.Buffer
	if err := Encode(&buf, meta, img); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// EncodeBytesWith is EncodeWith into a fresh byte slice.
func EncodeBytesWith(meta Meta, img *cvm.Image, opts Options) ([]byte, error) {
	var buf bytes.Buffer
	if err := EncodeWith(&buf, meta, img, opts); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeBytes is Decode from a byte slice.
func DecodeBytes(b []byte) (Meta, *cvm.Image, error) {
	return Decode(bytes.NewReader(b))
}
