// Package ckpt implements Condor's checkpoint files and the per-machine
// checkpoint store.
//
// A checkpoint file is a self-describing container: a fixed header
// carrying a magic number, format version, architecture tag, job
// identity and a CRC, followed by a gob-encoded cvm.Image. The paper's
// §2.3 dictates the contents (text, data, bss, stack, registers, open
// files); the Image type already captures those, so this package's job is
// durability and integrity: a truncated or bit-flipped checkpoint must be
// detected, never silently restored.
//
// The Store addresses two §4 operational problems:
//
//   - Full disks: checkpoint files of remotely executing jobs are kept on
//     the submitting machine, so a user's local disk bounds how many jobs
//     they can keep in the system. The Store enforces a capacity and
//     returns ErrDiskFull, which the local scheduler surfaces when
//     placement would exceed it.
//   - Shared text segments: users submit many copies of one program with
//     different parameters, so the Store keeps a single reference-counted
//     copy of each distinct text segment (keyed by checksum) instead of
//     one per checkpoint.
package ckpt
