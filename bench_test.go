package condor

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (run with `go test -bench=. -benchmem`). Each
// Benchmark prints the artifact once (so `go test -bench` output is the
// reproduction) and reports the headline quantity as a benchmark metric.
// Ablation benches correspond to the A1–A6 rows in DESIGN.md.

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"condor/internal/ckpt"
	"condor/internal/coordinator"
	"condor/internal/cvm"
	"condor/internal/machine"
	"condor/internal/policy"
	"condor/internal/proto"
	"condor/internal/ru"
	"condor/internal/schedd"
	"condor/internal/simulation"
	"condor/internal/updown"
	"condor/internal/wire"
)

// monthReport caches one full-month run for the figure benches' printed
// artifacts; the timed loop still runs fresh simulations.
var (
	benchOnce   sync.Once
	benchReport *simulation.Report
)

func cachedMonth() *simulation.Report {
	benchOnce.Do(func() { benchReport = simulation.Run(simulation.DefaultConfig()) })
	return benchReport
}

// shortSim is the config used inside timed loops (a 10-day window keeps
// a full -bench=. run fast while preserving every mechanism).
func shortSim() simulation.Config {
	cfg := simulation.DefaultConfig()
	cfg.Days = 10
	cfg.DrainDays = 8
	return cfg
}

var printOnce sync.Map

func printArtifact(key, text string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Println(text)
	}
}

// --- Table 1 and Figures 2–9 -------------------------------------------

func BenchmarkTable1UserProfile(b *testing.B) {
	printArtifact("table1", cachedMonth().Table1())
	cfg := shortSim()
	var jobs int
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		rep := simulation.Run(cfg)
		jobs = rep.TotalJobs
	}
	b.ReportMetric(float64(jobs), "jobs")
}

func BenchmarkFigure2ServiceDemandCDF(b *testing.B) {
	rep := cachedMonth()
	printArtifact("fig2", rep.Figure2())
	b.ReportMetric(rep.Demands.Mean(), "mean-demand-h")
	b.ReportMetric(rep.Demands.Median(), "median-demand-h")
	cfg := shortSim()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		_ = simulation.Run(cfg).Demands.Median()
	}
}

func BenchmarkFigure3QueueLength(b *testing.B) {
	rep := cachedMonth()
	printArtifact("fig3", rep.Figure3())
	b.ReportMetric(rep.TotalQueue.Mean(), "mean-total-queue")
	b.ReportMetric(rep.LightQueue.Mean(), "mean-light-queue")
	cfg := shortSim()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		_ = simulation.Run(cfg).TotalQueue.Mean()
	}
}

func BenchmarkFigure4WaitRatio(b *testing.B) {
	rep := cachedMonth()
	printArtifact("fig4", rep.Figure4())
	b.ReportMetric(rep.MeanWaitRatioAll, "wait-ratio-all")
	b.ReportMetric(rep.MeanWaitRatioLight, "wait-ratio-light")
	cfg := shortSim()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		_ = simulation.Run(cfg).MeanWaitRatioAll
	}
}

func BenchmarkFigure5Utilization(b *testing.B) {
	rep := cachedMonth()
	printArtifact("fig5", rep.Figure5())
	b.ReportMetric(100*rep.LocalUtilMean, "local-util-pct")
	b.ReportMetric(rep.AvailableHours, "available-h")
	b.ReportMetric(rep.ConsumedHours, "consumed-h")
	cfg := shortSim()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		_ = simulation.Run(cfg).ConsumedHours
	}
}

func BenchmarkFigure6WeekUtilization(b *testing.B) {
	rep := cachedMonth()
	printArtifact("fig6", rep.Figure6())
	cfg := shortSim()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		_ = simulation.Run(cfg).Figure6()
	}
}

func BenchmarkFigure7WeekQueues(b *testing.B) {
	rep := cachedMonth()
	printArtifact("fig7", rep.Figure7())
	cfg := shortSim()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		_ = simulation.Run(cfg).Figure7()
	}
}

func BenchmarkFigure8CheckpointRate(b *testing.B) {
	rep := cachedMonth()
	printArtifact("fig8", rep.Figure8())
	b.ReportMetric(rep.MeanCkptsPerJob, "ckpts-per-job")
	b.ReportMetric(float64(rep.Vacates), "vacates")
	cfg := shortSim()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		_ = simulation.Run(cfg).MeanCkptsPerJob
	}
}

func BenchmarkFigure9Leverage(b *testing.B) {
	rep := cachedMonth()
	printArtifact("fig9", rep.Figure9())
	b.ReportMetric(rep.OverallLeverage, "leverage")
	b.ReportMetric(rep.ShortJobLeverage, "leverage-short")
	cfg := shortSim()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		_ = simulation.Run(cfg).OverallLeverage
	}
}

// --- §3.1 overheads on the real daemons ---------------------------------

// BenchmarkOverheadCoordinatorPoll measures one full poll-decide-act
// cycle over a live pool of stations — the coordinator cost the paper
// bounds below 1% of a workstation ("a coordinator can manage as many as
// 100 workstations").
func BenchmarkOverheadCoordinatorPoll(b *testing.B) {
	for _, n := range []int{5, 23} {
		b.Run(fmt.Sprintf("stations-%d", n), func(b *testing.B) {
			coord, err := coordinator.New(coordinator.Config{PollInterval: time.Hour})
			if err != nil {
				b.Fatal(err)
			}
			defer coord.Close()
			stations := make([]*schedd.Station, n)
			for i := range stations {
				st, err := schedd.New(schedd.Config{
					Name:    fmt.Sprintf("b%02d", i),
					Monitor: machine.NewScriptedMonitor(false),
					Starter: ru.StarterConfig{ScanInterval: time.Hour},
				})
				if err != nil {
					b.Fatal(err)
				}
				defer st.Close()
				if err := st.Register(coord.Addr()); err != nil {
					b.Fatal(err)
				}
				stations[i] = st
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				coord.Cycle()
			}
			b.StopTimer()
			perCycle := b.Elapsed() / time.Duration(b.N)
			// Fraction of a machine consumed at the paper's 2-minute
			// cadence (paper bound: <1%).
			b.ReportMetric(100*float64(perCycle)/float64(2*time.Minute), "pct-of-machine")
		})
	}
}

// BenchmarkOverheadStationPoll measures the station's side of a poll:
// the local scheduler work the paper also bounds below 1%.
func BenchmarkOverheadStationPoll(b *testing.B) {
	st, err := schedd.New(schedd.Config{
		Name:    "bench",
		Monitor: machine.NewScriptedMonitor(false),
		Starter: ru.StarterConfig{ScanInterval: time.Hour},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 50; i++ {
		if _, err := st.Submit("u", cvm.SpinProgram(int64(i+1)), 0); err != nil {
			b.Fatal(err)
		}
	}
	coord, err := coordinator.New(coordinator.Config{PollInterval: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	defer coord.Close()
	if err := st.Register(coord.Addr()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coord.Cycle() // includes the wire round trip to the station
	}
	b.StopTimer()
	perScan := b.Elapsed() / time.Duration(b.N)
	b.ReportMetric(100*float64(perScan)/float64(30*time.Second), "pct-of-machine")
}

// BenchmarkSyscallRoundTrip measures a remote system call through the
// full RU path: executor side → wire → shadow handler → wire back. The
// paper measured 10 ms per remote call on a VAXstation II and 20× less
// locally; the shape to preserve is remote ≫ local.
func BenchmarkSyscallRoundTrip(b *testing.B) {
	b.Run("remote-wire", func(b *testing.B) {
		srv, err := newSyscallServer()
		if err != nil {
			b.Fatal(err)
		}
		defer srv.close()
		req := cvm.SyscallRequest{Num: cvm.SysPrint, Data: bytes.Repeat([]byte("x"), 64)}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := srv.call(req); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		perCall := b.Elapsed() / time.Duration(b.N)
		b.ReportMetric(float64(perCall.Nanoseconds())/1000, "us-per-syscall")
	})
	b.Run("local-baseline", func(b *testing.B) {
		host := cvm.NewMemHost()
		req := cvm.SyscallRequest{Num: cvm.SysPrint, Data: bytes.Repeat([]byte("x"), 64)}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := host.Syscall(req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCheckpointPerMB measures checkpoint encode+decode throughput
// — the paper's 5 s/MB placement/checkpoint cost on 1987 hardware.
func BenchmarkCheckpointPerMB(b *testing.B) {
	// A program with ≈1 MiB of static state (128Ki words).
	prog := cvm.MustAssemble("big", ".bss\nbuf: .space 131072\n.text\nstart:\n HALT 0\n")
	vm, err := cvm.New(prog, cvm.NewMemHost(), cvm.Config{})
	if err != nil {
		b.Fatal(err)
	}
	img := vm.Snapshot()
	meta := ckpt.Meta{JobID: "bench/1"}
	blob, err := ckpt.EncodeBytes(meta, img)
	if err != nil {
		b.Fatal(err)
	}
	mb := float64(len(blob)) / (1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := ckpt.EncodeBytes(meta, img)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := ckpt.DecodeBytes(out); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perMB := b.Elapsed().Seconds() / float64(b.N) / mb
	b.ReportMetric(perMB*1000, "ms-per-MB")
}

// BenchmarkVMExecution measures guest instruction throughput.
func BenchmarkVMExecution(b *testing.B) {
	prog := cvm.SpinProgram(1 << 30)
	vm, err := cvm.New(prog, cvm.NewMemHost(), cvm.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vm.Run(100_000); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*100_000/b.Elapsed().Seconds()/1e6, "Minstr-per-s")
}

// BenchmarkPolicyDecide measures one allocation decision at pool sizes
// up to the paper's "100 workstations" scaling claim.
func BenchmarkPolicyDecide(b *testing.B) {
	for _, n := range []int{23, 100, 400} {
		b.Run(fmt.Sprintf("stations-%d", n), func(b *testing.B) {
			table := updown.NewTable(updown.DefaultConfig())
			views := make([]policy.StationView, n)
			for i := range views {
				name := fmt.Sprintf("ws%03d", i)
				views[i] = policy.StationView{Name: name}
				switch i % 3 {
				case 0:
					views[i].State = proto.StationIdle
				case 1:
					views[i].State = proto.StationOwner
					views[i].WaitingJobs = i % 7
				default:
					views[i].State = proto.StationClaimed
					views[i].ForeignJob = "x/1"
					views[i].ForeignOwner = fmt.Sprintf("ws%03d", (i+1)%n)
				}
				table.Update(name, i%3, i%2 == 0)
			}
			cfg := policy.DefaultConfig()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = policy.Decide(views, table, cfg)
			}
		})
	}
}

// --- Ablations (DESIGN.md A1–A6) ----------------------------------------

func benchAblationPair(b *testing.B, name string, mk func(base simulation.Config) (simulation.Config, simulation.Config), metric func(*simulation.Report) float64, unitA, unitB string) {
	b.Helper()
	base := shortSim()
	cfgA, cfgB := mk(base)
	var a, bb float64
	for i := 0; i < b.N; i++ {
		cfgA.Seed = int64(i)
		cfgB.Seed = int64(i)
		a = metric(simulation.Run(cfgA))
		bb = metric(simulation.Run(cfgB))
	}
	b.ReportMetric(a, unitA)
	b.ReportMetric(bb, unitB)
	printArtifact("ablation-"+name, fmt.Sprintf("Ablation %s: %s=%.2f %s=%.2f", name, unitA, a, unitB, bb))
}

// BenchmarkAblationVacatePolicy (A1): suspend-then-vacate vs
// kill-immediately-with-periodic-checkpoints — compare work redone.
func BenchmarkAblationVacatePolicy(b *testing.B) {
	benchAblationPair(b, "vacate",
		func(base simulation.Config) (simulation.Config, simulation.Config) {
			kill := base
			kill.Vacate = simulation.VacateKillImmediately
			kill.PeriodicCheckpoint = 30 * time.Minute
			kill.DrainDays = 15
			return base, kill
		},
		func(r *simulation.Report) float64 { return r.WorkLostHours },
		"suspend-lost-h", "kill-lost-h")
}

// BenchmarkAblationPlacementPacing (A2): paced (one placement per
// station per cycle, the paper's §4 rule) vs unpaced bursts — compare
// the peak number of simultaneous placements a single station suffers,
// the quantity that "severely degraded" local machines when unbounded.
func BenchmarkAblationPlacementPacing(b *testing.B) {
	benchAblationPair(b, "pacing",
		func(base simulation.Config) (simulation.Config, simulation.Config) {
			burst := base
			burst.Policy = policy.DefaultConfig()
			burst.Policy.MaxGrantsPerCycle = 16
			burst.Policy.AllowBurstPerStation = true
			return base, burst
		},
		func(r *simulation.Report) float64 { return float64(r.PeakStationBurst) },
		"paced-peak-burst", "unpaced-peak-burst")
}

// BenchmarkAblationUpDownVsFIFO (A3): the fairness algorithm vs FIFO —
// compare light users' wait ratio.
func BenchmarkAblationUpDownVsFIFO(b *testing.B) {
	benchAblationPair(b, "updown",
		func(base simulation.Config) (simulation.Config, simulation.Config) {
			fifo := base
			fifo.FIFO = true
			return base, fifo
		},
		func(r *simulation.Report) float64 { return r.MeanWaitRatioLight },
		"updown-light-wait", "fifo-light-wait")
}

// BenchmarkAblationHistoryPlacement (A4): §5.1 availability-history
// placement vs first-fit — compare owner-return vacates.
func BenchmarkAblationHistoryPlacement(b *testing.B) {
	benchAblationPair(b, "history",
		func(base simulation.Config) (simulation.Config, simulation.Config) {
			hist := base
			hist.Policy = policy.DefaultConfig()
			hist.Policy.Placement = policy.PlaceHistory
			return base, hist
		},
		func(r *simulation.Report) float64 { return float64(r.Vacates) },
		"firstfit-vacates", "history-vacates")
}

// BenchmarkAblationPeriodicCheckpoint (A5): hourly periodic checkpoints
// under the suspend policy — compare checkpoint traffic per job.
func BenchmarkAblationPeriodicCheckpoint(b *testing.B) {
	benchAblationPair(b, "periodic",
		func(base simulation.Config) (simulation.Config, simulation.Config) {
			per := base
			per.PeriodicCheckpoint = time.Hour
			return base, per
		},
		func(r *simulation.Report) float64 { return r.MeanCkptsPerJob },
		"vacate-only-ckpts", "periodic-ckpts")
}

// BenchmarkAblationSharedText (A6): shared vs private text segments in
// the checkpoint store (§4) — compare bytes for a 50-job sweep.
func BenchmarkAblationSharedText(b *testing.B) {
	images := make([]*cvm.Image, 50)
	for i := range images {
		vm, err := cvm.New(cvm.SumProgram(int64(1000+i)), cvm.NewMemHost(), cvm.Config{})
		if err != nil {
			b.Fatal(err)
		}
		images[i] = vm.Snapshot()
	}
	var sharedBytes, privateBytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shared := ckpt.NewMemStore(0, true)
		private := ckpt.NewMemStore(0, false)
		for j, img := range images {
			meta := ckpt.Meta{JobID: fmt.Sprintf("sweep/%d", j)}
			if err := shared.Put(meta, img); err != nil {
				b.Fatal(err)
			}
			if err := private.Put(meta, img); err != nil {
				b.Fatal(err)
			}
		}
		sharedBytes = shared.Usage().Bytes
		privateBytes = private.Usage().Bytes
	}
	b.ReportMetric(float64(sharedBytes), "shared-bytes")
	b.ReportMetric(float64(privateBytes), "private-bytes")
	printArtifact("ablation-text", fmt.Sprintf(
		"Ablation shared-text: 50-job sweep stores %d B shared vs %d B private (%.1fx saving)",
		sharedBytes, privateBytes, float64(privateBytes)/float64(sharedBytes)))
}

// syscallServer is a minimal shadow: a wire server executing guest
// system calls against a local in-memory host, dialled by a pure client
// peer — exactly the transport a remote executor uses.
type syscallServer struct {
	host *cvm.MemHost
	srv  *wire.Server
	peer *wire.Peer
}

func newSyscallServer() (*syscallServer, error) {
	s := &syscallServer{host: cvm.NewMemHost()}
	srv, err := wire.NewServer("127.0.0.1:0", func(p *wire.Peer) wire.Handler {
		return func(_ context.Context, msg any) (any, error) {
			m, ok := msg.(proto.SyscallMsg)
			if !ok {
				return nil, fmt.Errorf("unexpected %T", msg)
			}
			rep, err := s.host.Syscall(m.Req)
			if err != nil {
				return nil, err
			}
			return proto.SyscallReplyMsg{Rep: rep}, nil
		}
	})
	if err != nil {
		return nil, err
	}
	s.srv = srv
	peer, err := wire.Dial(srv.Addr(), time.Second, nil)
	if err != nil {
		srv.Close()
		return nil, err
	}
	s.peer = peer
	return s, nil
}

func (s *syscallServer) close() {
	s.peer.Close()
	s.srv.Close()
}

func (s *syscallServer) call(req cvm.SyscallRequest) (cvm.SyscallReply, error) {
	reply, err := s.peer.Call(context.Background(), proto.SyscallMsg{JobID: "bench", Req: req})
	if err != nil {
		return cvm.SyscallReply{}, err
	}
	rep, ok := reply.(proto.SyscallReplyMsg)
	if !ok {
		return cvm.SyscallReply{}, fmt.Errorf("unexpected reply %T", reply)
	}
	return rep.Rep, nil
}
