package condor

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestPoolStressChurn drives a live pool through sustained chaos:
// concurrent submissions from several stations while owners flap on and
// off their machines. Every job must still complete with the correct
// answer — the paper's completion guarantee under churn, on the real
// daemons rather than the simulator.
func TestPoolStressChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	const (
		stations    = 5
		jobsPerHome = 6
	)
	pool, err := NewPool(PoolConfig{
		Stations:      stations,
		Fast:          true,
		SliceDelay:    200 * time.Microsecond,
		StepsPerSlice: 5_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// Owner-flapping: random machines become busy and free again.
	stopFlap := make(chan struct{})
	var flapWG sync.WaitGroup
	flapWG.Add(1)
	go func() {
		defer flapWG.Done()
		rng := rand.New(rand.NewSource(7))
		names := pool.StationNames()
		for {
			select {
			case <-stopFlap:
				for _, n := range names {
					_ = pool.SetOwnerActive(n, false)
				}
				return
			case <-time.After(time.Duration(5+rng.Intn(20)) * time.Millisecond):
				name := names[rng.Intn(len(names))]
				_ = pool.SetOwnerActive(name, rng.Intn(2) == 0)
			}
		}
	}()

	type expect struct {
		jobID string
		want  string
	}
	var (
		mu      sync.Mutex
		expects []expect
	)
	var subWG sync.WaitGroup
	for s := 0; s < stations; s++ {
		s := s
		subWG.Add(1)
		go func() {
			defer subWG.Done()
			for j := 0; j < jobsPerHome; j++ {
				n := int64(400_000*(s+1) + j)
				jobID, err := pool.Submit(fmt.Sprintf("ws%d", s), "stress", SumProgram(n))
				if err != nil {
					t.Errorf("submit ws%d: %v", s, err)
					return
				}
				mu.Lock()
				expects = append(expects, expect{jobID: jobID, want: fmt.Sprintf("%d", n*(n+1)/2)})
				mu.Unlock()
			}
		}()
	}
	subWG.Wait()

	// Let chaos reign for a while, then settle the owners so the tail of
	// jobs can drain.
	time.Sleep(400 * time.Millisecond)
	close(stopFlap)
	flapWG.Wait()

	deadline := 90 * time.Second
	for _, e := range expects {
		status, err := pool.Wait(e.jobID, deadline)
		if err != nil {
			t.Fatalf("wait %s: %v", e.jobID, err)
		}
		if status.State != JobCompleted {
			t.Fatalf("job %s = %v (%s)", e.jobID, status.State, status.FaultMsg)
		}
		got := trimmed(status.Stdout)
		if got != e.want {
			t.Fatalf("job %s answered %q, want %q (checkpoints=%d placements=%d)",
				e.jobID, got, e.want, status.Checkpoints, status.Placements)
		}
	}

	// The churn must have exercised the checkpoint path at least once
	// across the fleet.
	var totalCkpts, totalPlacements int
	for _, e := range expects {
		st, err := pool.Job(e.jobID)
		if err != nil {
			t.Fatal(err)
		}
		totalCkpts += st.Checkpoints
		totalPlacements += st.Placements
	}
	if totalCkpts == 0 {
		t.Error("no checkpoints across the whole churn — flapping never interrupted a job")
	}
	t.Logf("stress: %d jobs completed, %d checkpoints, %d placements",
		len(expects), totalCkpts, totalPlacements)
}

func trimmed(s string) string {
	for len(s) > 0 && (s[len(s)-1] == '\n' || s[len(s)-1] == '\r') {
		s = s[:len(s)-1]
	}
	return s
}
