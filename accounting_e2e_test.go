package condor

import (
	"context"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"condor/internal/accounting"
	"condor/internal/coordinator"
	"condor/internal/machine"
	"condor/internal/proto"
	"condor/internal/ru"
	"condor/internal/schedd"
	"condor/internal/telemetry"
	"condor/internal/wire"
)

// TestAccountingEndToEnd is the paper's §5 measurement loop run live: a
// job is preempted mid-execution (kill-immediately, so work past the
// last periodic checkpoint is redone) and resumes elsewhere, after
// which the process ledger must show badput > 0, checkpoint overhead
// > 0, and a finite per-user leverage — and condor-report's renderer
// must print all of it. Station/owner names are unique to this test
// because accounting.Default accumulates across the whole test binary.
func TestAccountingEndToEnd(t *testing.T) {
	p, err := NewPool(PoolConfig{
		Stations:      3,
		StationPrefix: "acct",
		Fast:          true,
		// Kill policy makes preemption lose the work since the last
		// checkpoint — the badput the paper measures.
		KillImmediately:    true,
		PeriodicCheckpoint: 40 * time.Millisecond,
		SliceDelay:         200 * time.Microsecond,
		StepsPerSlice:      5_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const owner = "acct-alice"
	// A kill can land exactly on a checkpoint boundary and lose
	// nothing; evict repeatedly (fresh job each round) until the ledger
	// actually shows redone work.
	deadline := time.Now().Add(60 * time.Second)
	for badput(owner) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no badput accrued after repeated mid-run preemptions")
		}
		runOnePreemptedJob(t, p, owner)
	}

	view := accounting.Default.Snapshot()
	var user *accounting.PartyRow
	for i := range view.Users {
		if view.Users[i].Name == owner {
			user = &view.Users[i]
		}
	}
	if user == nil {
		t.Fatalf("no user row for %s in %+v", owner, view.Users)
	}
	if user.BadputSteps == 0 {
		t.Error("user badput = 0 after mid-run kill")
	}
	if user.Checkpoints == 0 || user.CkptNanos == 0 {
		t.Errorf("checkpoint overhead not metered: %d ckpts, %d ns",
			user.Checkpoints, user.CkptNanos)
	}
	if user.SupportNanos == 0 {
		t.Error("support time = 0; leverage denominator missing")
	}
	if user.Leverage <= 0 || math.IsInf(user.Leverage, 0) || math.IsNaN(user.Leverage) {
		t.Errorf("leverage = %v, want finite and positive", user.Leverage)
	}
	if view.QueueWait.Count == 0 {
		t.Error("no queue-wait episodes recorded")
	}

	// The report renderer must surface every §5 table on this view.
	report := accounting.RenderReport([]accounting.Section{{Name: "test", View: view}}, 64)
	for _, want := range []string{
		"Per-user capacity and leverage",
		owner,
		"badput (redone after preemption)",
		"checkpoint overhead",
		"Queue-wait distribution",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q\n%s", want, report)
		}
	}

	// The same view serves over HTTP the way the daemons' -http flag
	// exposes it.
	srv, err := telemetry.Serve("127.0.0.1:0", telemetry.Default)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/accounting")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/accounting status = %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `"process"`) || !strings.Contains(string(body), owner) {
		t.Errorf("/accounting body missing process section or %s:\n%s", owner, body)
	}
}

// runOnePreemptedJob submits a job, waits for it to run and checkpoint,
// brings the owner of its execution machine back (kill-immediately
// eviction), and waits for the job to finish elsewhere.
func runOnePreemptedJob(t *testing.T, p *Pool, owner string) {
	t.Helper()
	jobID, err := p.SubmitJob("acct0", owner, SumProgram(5_000_000), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var execHost string
	deadline := time.Now().Add(20 * time.Second)
	for {
		st, err := p.Job(jobID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == JobRunning && st.Checkpoints >= 1 {
			execHost = st.ExecHost
			break
		}
		if st.State == JobCompleted {
			return // too fast to catch mid-run; caller will retry
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never ran+checkpointed: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := p.SetOwnerActive(execHost, true); err != nil {
		t.Fatal(err)
	}
	status, err := p.Wait(jobID, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if status.State != JobCompleted {
		t.Fatalf("preempted job did not finish: %+v", status)
	}
	if err := p.SetOwnerActive(execHost, false); err != nil {
		t.Fatal(err)
	}
}

// badput reads the owner's accumulated badput from the process ledger.
func badput(owner string) uint64 {
	for _, u := range accounting.Default.Snapshot().Users {
		if u.Name == owner {
			return u.BadputSteps
		}
	}
	return 0
}

// TestAccountingSurvivesCoordinatorRestart proves the allocation ledger
// rides the coordinator journal: grants issued before a restart are
// still reported (over the same AccountingRequest RPC condor-report
// uses) by the replayed incarnation.
func TestAccountingSurvivesCoordinatorRestart(t *testing.T) {
	dir := t.TempDir()
	// A huge poll interval freezes the background ticker so every
	// allocation cycle below is an explicit Cycle() call and the totals
	// are deterministic between the pre-close RPC and Close.
	coord, err := coordinator.New(coordinator.Config{
		PollInterval: time.Hour,
		StateDir:     dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	const home = "acctr0"
	stations := make([]*schedd.Station, 0, 2)
	for _, name := range []string{home, "acctr1"} {
		st, err := schedd.New(schedd.Config{
			Name:    name,
			Monitor: machine.NewScriptedMonitor(false),
			Starter: ru.StarterConfig{
				ScanInterval: 5 * time.Millisecond,
				SuspendGrace: 50 * time.Millisecond,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		if err := st.Register(coord.Addr()); err != nil {
			t.Fatal(err)
		}
		stations = append(stations, st)
	}
	jobID, err := stations[0].SubmitJob("acct-bob", SumProgram(50_000), schedd.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		coord.Cycle()
		st, err := stations[0].Job(jobID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == JobCompleted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never completed: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	before := queryAlloc(t, coord.Addr(), home)
	if before.GrantsUsed == 0 {
		t.Fatalf("no used grants recorded before restart: %+v", before)
	}
	coord.Close()

	coord2, err := coordinator.New(coordinator.Config{
		PollInterval: time.Hour,
		StateDir:     dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Close()
	after := queryAlloc(t, coord2.Addr(), home)
	if after != before {
		t.Fatalf("allocation totals did not survive restart:\nbefore %+v\nafter  %+v", before, after)
	}
}

// queryAlloc fetches one station's allocation totals over the wire, the
// way condor-report does.
func queryAlloc(t *testing.T, addr, station string) accounting.AllocTotals {
	t.Helper()
	peer, err := wire.Dial(addr, 5*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	reply, err := peer.Call(ctx, proto.AccountingRequest{})
	if err != nil {
		t.Fatal(err)
	}
	ar, ok := reply.(proto.AccountingReply)
	if !ok {
		t.Fatalf("unexpected reply %T", reply)
	}
	if !ar.HasCoordinator {
		t.Fatal("coordinator did not answer with its allocation ledger")
	}
	for _, a := range ar.Coordinator.Alloc {
		if a.Station == station {
			return a.AllocTotals
		}
	}
	t.Fatalf("no alloc row for %s in %+v", station, ar.Coordinator.Alloc)
	return accounting.AllocTotals{}
}
