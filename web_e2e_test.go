package condor

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"condor/internal/proto"
	"condor/internal/telemetry"
	"condor/internal/web"
	"condor/internal/wire"
)

// sseEvent is one decoded frame from a /events stream.
type sseEvent = telemetry.BusEvent

// readSSE consumes one /events stream, forwarding decoded events until
// stop returns true, the context ends, or the stream breaks.
func readSSE(ctx context.Context, url string, stop func(sseEvent) bool) ([]sseEvent, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		return nil, fmt.Errorf("content-type %q", ct)
	}
	var events []sseEvent
	sc := bufio.NewScanner(resp.Body)
	var data []string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if len(data) == 0 {
				continue
			}
			var ev sseEvent
			if err := json.Unmarshal([]byte(strings.Join(data, "\n")), &ev); err != nil {
				return events, fmt.Errorf("bad SSE payload %q: %w", data, err)
			}
			data = data[:0]
			events = append(events, ev)
			if stop(ev) {
				return events, nil
			}
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
		}
	}
	return events, fmt.Errorf("stream ended early: %v", sc.Err())
}

// TestSSEFanout is the dashboard's acceptance test: a live three-daemon
// pool, 50 concurrent SSE subscribers, and every one of them observing
// the same grant and the same health-transition events — while the
// publishers (coordinator cycle loop, health machine) never block on a
// consumer.
func TestSSEFanout(t *testing.T) {
	p, err := NewPool(PoolConfig{Stations: 3, Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	srv, err := web.NewServer(web.Config{
		CoordinatorAddr: p.CoordinatorAddr(),
		Refresh:         100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Attach all 50 subscribers before any interesting event happens, so
	// each must observe the identical grant and health transitions.
	const subscribers = 50
	type result struct {
		firstGrant  uint64 // seq of the first grant event seen
		ghostHealth uint64 // seq of the first suspect/quarantine for "ghost"
		err         error
	}
	results := make([]result, subscribers)
	var wg sync.WaitGroup
	for i := 0; i < subscribers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var r result
			_, r.err = readSSE(ctx, "http://"+addr+"/events", func(ev sseEvent) bool {
				if ev.Kind == "grant" && r.firstGrant == 0 {
					r.firstGrant = ev.Seq
				}
				if (ev.Kind == "suspect" || ev.Kind == "quarantine") &&
					ev.Station == "ghost" && r.ghostHealth == 0 {
					r.ghostHealth = ev.Seq
				}
				return r.firstGrant != 0 && r.ghostHealth != 0
			})
			results[i] = r
		}(i)
	}
	// The SSE handler flushes its headers (and a comment frame) on
	// connect, so the subscriber count is observable: wait until all 50
	// rings are attached before generating events.
	deadline := time.Now().Add(10 * time.Second)
	for telemetry.Events.Subscribers() < subscribers {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d subscribers attached", telemetry.Events.Subscribers(), subscribers)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A grant: run one job through the pool.
	jobID, err := p.Submit("ws0", "alice", SumProgram(10_000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Wait(jobID, 20*time.Second); err != nil {
		t.Fatal(err)
	}

	// A health transition: register a station that refuses every poll.
	peer, err := wire.Dial(p.CoordinatorAddr(), 5*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := peer.Call(ctx, proto.RegisterRequest{Name: "ghost", Addr: "127.0.0.1:1"}); err != nil {
		peer.Close()
		t.Fatal(err)
	}
	peer.Close()

	wg.Wait()
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("subscriber %d: %v", i, r.err)
		}
		if r.firstGrant == 0 || r.ghostHealth == 0 {
			t.Fatalf("subscriber %d: grant seq %d, ghost health seq %d — missing events",
				i, r.firstGrant, r.ghostHealth)
		}
		// Everyone attached before the first grant, so everyone must have
		// observed the *same* first grant and the same ghost transition.
		if r.firstGrant != results[0].firstGrant || r.ghostHealth != results[0].ghostHealth {
			t.Fatalf("subscriber %d saw grant=%d ghost=%d, subscriber 0 saw grant=%d ghost=%d",
				i, r.firstGrant, r.ghostHealth, results[0].firstGrant, results[0].ghostHealth)
		}
	}
}

// TestDashboardSmoke boots a coordinator + two stations + condor-web in
// one process and walks the dashboard's whole surface: the embedded
// page serves, the JSON API aggregates the pool, a grant streams out of
// /events, alerts evaluate, and the daemon's own /metrics and /healthz
// answer.
func TestDashboardSmoke(t *testing.T) {
	p, err := NewPool(PoolConfig{Stations: 2, Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	srv, err := web.NewServer(web.Config{
		CoordinatorAddr: p.CoordinatorAddr(),
		Refresh:         50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	base := "http://" + addr

	// The embedded page must serve (and be the dashboard, not a 404).
	page := httpGet(t, base+"/")
	for _, want := range []string{"condor-web", "/api/overview", "text/event-stream"} {
		if !strings.Contains(page, want) {
			t.Errorf("embedded page missing %q", want)
		}
	}

	// One grant must stream out of /events while a job runs.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	grant := make(chan sseEvent, 1)
	go func() {
		events, err := readSSE(ctx, base+"/events", func(ev sseEvent) bool {
			return ev.Kind == "grant"
		})
		if err == nil && len(events) > 0 {
			grant <- events[len(events)-1]
		}
	}()
	// Give the subscriber a moment to attach before generating the grant.
	deadline := time.Now().Add(5 * time.Second)
	for telemetry.Events.Subscribers() < 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	jobID, err := p.Submit("ws0", "smoke", SumProgram(10_000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Wait(jobID, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-grant:
		if ev.Source != "coordinator" {
			t.Errorf("grant event source = %q, want coordinator", ev.Source)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("no grant event on /events within 15s")
	}

	// The aggregation loop must produce a full overview. Wait for a
	// snapshot taken after the first allocation cycle — the very first
	// refresh can race the pool's startup and see registered stations
	// but zero cycles.
	var ov web.Overview
	waitFor(t, 10*time.Second, func() bool {
		body := httpGet(t, base+"/api/overview")
		if err := json.Unmarshal([]byte(body), &ov); err != nil {
			t.Fatalf("overview JSON: %v\n%s", err, body)
		}
		return len(ov.Stations) == 2 && ov.Fields["stations"] == 2 &&
			ov.Coordinator.Cycles > 0
	})
	if len(ov.Alerts) == 0 {
		t.Error("overview has no alert rules (defaults should apply)")
	}
	for _, a := range ov.Alerts {
		if a.Firing {
			t.Errorf("alert %s firing on a healthy pool (value %g)", a.Rule, a.Value)
		}
	}

	// The jobs API answers (the job may have retired already).
	httpGet(t, base+"/api/jobs")
	// The events API proxies the coordinator's history.
	if body := httpGet(t, base+"/api/events"); !strings.Contains(body, "grant") {
		t.Errorf("/api/events missing grant history: %s", body)
	}
	// Per-station drill-down.
	if body := httpGet(t, base+"/api/station?name=ws0"); !strings.Contains(body, "ws0") {
		t.Errorf("/api/station missing station: %s", body)
	}

	// The daemon's own operational surface.
	if body := httpGet(t, base+"/metrics"); !strings.Contains(body, "condor_web_refresh_total") ||
		!strings.Contains(body, "condor_web_alerts_firing") {
		t.Error("dashboard /metrics missing condor_web_* series")
	}
	waitFor(t, 5*time.Second, func() bool {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return resp.StatusCode == http.StatusOK
	})
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s\n%s", url, resp.Status, b)
	}
	return string(b)
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
